#include "src/rewriting/rewriter.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "src/algebra/plan_printer.h"
#include "src/observability/metrics.h"
#include "src/observability/trace.h"
#include "src/pattern/embedding.h"
#include "src/rewriting/plan_enum.h"
#include "src/pattern/pattern_printer.h"
#include "src/util/strings.h"
#include "src/util/timer.h"
#include "src/viewstore/cost_model.h"

namespace svx {

namespace {

// ---------------------------------------------------------------------------
// Query analysis
// ---------------------------------------------------------------------------

struct QueryInfo {
  Pattern original;
  Pattern flat;  // nested edges flattened to optional edges
  std::vector<PatternNodeId> cols;          // return nodes (preorder)
  std::vector<uint8_t> col_attrs;
  std::vector<std::vector<PathId>> col_paths;  // associated paths per column
  std::vector<bool> col_optional;           // under an optional edge in flat
  std::vector<PatternNodeId> nested_edges;  // deepest-first
  std::vector<bool> related_path;           // Prop 3.4 relevance set over S
  /// Join-endpoint relevance: associated paths of q nodes and their
  /// ancestors. Joining on other paths cannot tighten the structural
  /// relationships between q nodes (§3.2: useful partners either carry a
  /// query path or an ancestor of one, like p2 in Figure 6).
  std::vector<bool> join_relevant;
  /// Exact associated paths of q nodes (search-order heuristic: candidates
  /// carrying these paths are explored first).
  std::vector<bool> assoc_exact;
  std::vector<std::string> labels;          // concrete labels of q nodes
};

int32_t PatternDepth(const Pattern& p, PatternNodeId n) {
  int32_t d = 0;
  for (PatternNodeId cur = n; cur >= 0; cur = p.node(cur).parent) ++d;
  return d;
}

std::vector<int32_t> PreorderRanks(const Pattern& p) {
  std::vector<int32_t> rank(static_cast<size_t>(p.size()), 0);
  int32_t r = 0;
  std::vector<PatternNodeId> stack{p.root()};
  while (!stack.empty()) {
    PatternNodeId n = stack.back();
    stack.pop_back();
    rank[static_cast<size_t>(n)] = r++;
    const auto& cs = p.node(n).children;
    for (auto it = cs.rbegin(); it != cs.rend(); ++it) stack.push_back(*it);
  }
  return rank;
}

QueryInfo AnalyzeQuery(const Pattern& q, const Summary& summary) {
  QueryInfo info;
  info.original = q;
  info.flat = q;
  for (PatternNodeId n = 1; n < info.flat.size(); ++n) {
    Pattern::Node& node = info.flat.mutable_node(n);
    if (node.nested) {
      node.nested = false;
      node.optional = true;
    }
  }
  info.cols = info.flat.ReturnNodes();
  for (PatternNodeId c : info.cols) {
    info.col_attrs.push_back(info.flat.node(c).attrs);
    bool optional = false;
    for (PatternNodeId cur = c; cur > 0; cur = info.flat.node(cur).parent) {
      optional = optional || info.flat.node(cur).optional;
    }
    info.col_optional.push_back(optional);
  }

  // Associated paths (Prop 3.7): computed on the strict skeleton; nodes in
  // optional subtrees may have no feasible path — then the check is skipped.
  AssociatedPaths paths = ComputeAssociatedPaths(info.flat, summary);
  for (PatternNodeId c : info.cols) {
    info.col_paths.push_back(paths.feasible[static_cast<size_t>(c)]);
  }

  // Nested edges of the original query, deepest first (adaptation order).
  for (PatternNodeId n = 1; n < q.size(); ++n) {
    if (q.node(n).nested) info.nested_edges.push_back(n);
  }
  std::sort(info.nested_edges.begin(), info.nested_edges.end(),
            [&](PatternNodeId a, PatternNodeId b) {
              return PatternDepth(q, a) > PatternDepth(q, b);
            });

  // Prop 3.4 relevance set: every associated path of any *non-root* q node
  // (the paper explicitly excludes the roots — all patterns share the
  // document root), closed under ancestors and descendants.
  info.related_path.assign(static_cast<size_t>(summary.size()), false);
  info.join_relevant.assign(static_cast<size_t>(summary.size()), false);
  info.assoc_exact.assign(static_cast<size_t>(summary.size()), false);
  for (PatternNodeId n = 1; n < info.flat.size(); ++n) {
    for (PathId s : paths.feasible[static_cast<size_t>(n)]) {
      info.related_path[static_cast<size_t>(s)] = true;
      info.join_relevant[static_cast<size_t>(s)] = true;
      info.assoc_exact[static_cast<size_t>(s)] = true;
      for (PathId a = summary.parent(s); a != kInvalidPath;
           a = summary.parent(a)) {
        info.related_path[static_cast<size_t>(a)] = true;
        info.join_relevant[static_cast<size_t>(a)] = true;
      }
      for (PathId d : summary.Descendants(s)) {
        info.related_path[static_cast<size_t>(d)] = true;
      }
    }
  }

  for (PatternNodeId n = 0; n < q.size(); ++n) {
    if (!q.node(n).IsWildcard()) info.labels.push_back(q.node(n).label);
  }
  std::sort(info.labels.begin(), info.labels.end());
  info.labels.erase(std::unique(info.labels.begin(), info.labels.end()),
                    info.labels.end());
  return info;
}

/// Prop 3.4: a view is kept iff some non-root node has an associated path
/// related (equal / ancestor / descendant) to a non-root query path.
bool ViewRelated(const ViewDef& view, const QueryInfo& qi,
                 const Summary& summary) {
  if (view.pattern.size() <= 1) return false;
  AssociatedPaths paths =
      ComputeAssociatedPaths(view.pattern.Strict(), summary);
  for (PatternNodeId n = 1; n < view.pattern.size(); ++n) {
    for (PathId s : paths.feasible[static_cast<size_t>(n)]) {
      if (qi.related_path[static_cast<size_t>(s)]) return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Candidate manipulation
// ---------------------------------------------------------------------------

void RetagPieces(std::vector<Piece>* pieces, const std::string& tag) {
  for (Piece& p : *pieces) {
    for (ColumnBinding& b : p.bindings) b.prefix = tag + b.prefix;
  }
}

// ---------------------------------------------------------------------------
// Equivalence testing and plan adaptation
// ---------------------------------------------------------------------------

struct PlanSelect {
  SelectKind kind;
  int32_t col;
  std::string label;
  Predicate pred = Predicate::True();
};

/// One tested combination: column prefixes per query column.
struct Assignment {
  std::vector<std::string> prefixes;
};

struct Partial {
  PlanPtr projected_plan;  // flat projected plan (no nesting adaptation yet)
  std::vector<Pattern> test_patterns;
};

class RewriteSession {
 public:
  RewriteSession(const Summary& summary, const RewriterOptions& options,
                 const QueryInfo& qi, ContainmentMemo* memo,
                 RewriteStats* stats)
      : summary_(summary),
        options_(options),
        qi_(qi),
        memo_(memo),
        stats_(stats) {}

  /// Tests a candidate against the query; appends results and partial
  /// covers. Returns true if the result budget is exhausted.
  bool TryMatch(const Candidate& cand, std::vector<Rewriting>* results) {
    std::vector<Assignment> assignments = EnumerateAssignments(cand);
    for (const Assignment& asg : assignments) {
      if (Exhausted(results)) return true;
      if (stats_ != nullptr) ++stats_->equivalence_tests;
      std::vector<PlanSelect> selects;
      std::vector<Pattern> tps;
      if (!BuildTestPatterns(cand, asg, &tps, &selects)) continue;

      // Direction 1: every piece pattern is contained in the query.
      bool all_contained = true;
      for (const Pattern& tp : tps) {
        Result<bool> c = Contained(tp, qi_.flat);
        if (!c.ok() || !*c) {
          all_contained = false;
          break;
        }
      }
      if (!all_contained) continue;

      // Direction 2: the query is covered by the union of the pieces.
      std::vector<const Pattern*> ptrs;
      ptrs.reserve(tps.size());
      for (const Pattern& tp : tps) ptrs.push_back(&tp);
      Result<bool> covered = ContainedInUnion(qi_.flat, ptrs);
      if (!covered.ok()) continue;

      PlanPtr projected = BuildProjectedPlan(cand, asg, selects);
      if (*covered) {
        PlanPtr final_plan = AdaptNesting(projected->Clone());
        std::string compact = PlanToCompactString(*final_plan);
        if (result_compacts_.insert(compact).second) {
          results->push_back({std::move(final_plan), std::move(compact)});
          if (stats_ != nullptr) {
            ++stats_->results;
          }
        }
        if (Exhausted(results)) return true;
      } else if (partials_.size() < options_.max_union_partials &&
                 partial_keys_.insert(cand.CanonicalString()).second) {
        Partial p;
        p.projected_plan = std::move(projected);
        p.test_patterns = std::move(tps);
        partials_.push_back(std::move(p));
      }
    }
    return Exhausted(results);
  }

  /// Algorithm 1 lines 13-14: minimal unions of partial covers.
  void UnionPhase(std::vector<Rewriting>* results) {
    size_t n = partials_.size();
    if (n < 2) return;
    std::vector<std::vector<size_t>> found_subsets;
    // Enumerate subsets by increasing size so minimality is by construction.
    for (size_t size = 2; size <= options_.max_union_size && size <= n;
         ++size) {
      std::vector<size_t> idx(size);
      // Initialize combination 0,1,...,size-1.
      for (size_t i = 0; i < size; ++i) idx[i] = i;
      while (true) {
        if (Exhausted(results)) return;
        bool superset_of_found = false;
        for (const std::vector<size_t>& f : found_subsets) {
          if (std::includes(idx.begin(), idx.end(), f.begin(), f.end())) {
            superset_of_found = true;
            break;
          }
        }
        if (!superset_of_found) {
          std::vector<const Pattern*> all;
          for (size_t i : idx) {
            for (const Pattern& tp : partials_[i].test_patterns) {
              all.push_back(&tp);
            }
          }
          if (stats_ != nullptr) ++stats_->equivalence_tests;
          Result<bool> covered = ContainedInUnion(qi_.flat, all);
          if (covered.ok() && *covered) {
            found_subsets.push_back(idx);
            std::vector<PlanPtr> plans;
            for (size_t i : idx) {
              plans.push_back(partials_[i].projected_plan->Clone());
            }
            PlanPtr u = MakeUnion(std::move(plans));
            PlanPtr final_plan = AdaptNesting(std::move(u));
            std::string compact = PlanToCompactString(*final_plan);
            results->push_back({std::move(final_plan), std::move(compact)});
            if (stats_ != nullptr) ++stats_->results;
          }
        }
        // Next combination.
        size_t i = size;
        while (i > 0) {
          --i;
          if (idx[i] != i + n - size) {
            ++idx[i];
            for (size_t j = i + 1; j < size; ++j) idx[j] = idx[j - 1] + 1;
            break;
          }
          if (i == 0) return;
        }
      }
    }
  }

 private:
  bool Exhausted(const std::vector<Rewriting>* results) const {
    return results->size() >= options_.max_results ||
           (options_.stop_at_first && !results->empty());
  }

  /// Containment through the memo when one is configured.
  Result<bool> Contained(const Pattern& p, const Pattern& q) const {
    if (memo_ != nullptr) {
      return memo_->Contained(p, q, summary_, options_.containment);
    }
    return IsContained(p, q, summary_, options_.containment);
  }

  /// Union containment of the (fixed) query in candidate piece sets, with
  /// modS(q) built once and reused across every test of this session. When
  /// the model build exceeds its budgets, falls back to per-call streaming
  /// (which can still decide negatives early).
  Result<bool> ContainedInUnion(const Pattern& p,
                                const std::vector<const Pattern*>& qs) {
    const std::vector<CanonicalTree>* model = nullptr;
    if (&p == &qi_.flat) {
      if (!q_model_state_) {
        Result<std::vector<CanonicalTree>> built = BuildCanonicalModel(
            qi_.flat, summary_, options_.containment.model);
        q_model_state_ = built.ok() ? 1 : -1;
        if (built.ok()) q_model_ = std::move(*built);
      }
      if (q_model_state_ > 0) model = &q_model_;
    }
    if (memo_ != nullptr) {
      return memo_->ContainedInUnion(p, qs, summary_, options_.containment,
                                     model);
    }
    return IsContainedInUnion(p, qs, summary_, options_.containment, nullptr,
                              model);
  }

  /// Available attributes per prefix: intersection over pieces of the attr
  /// bits that have a binding.
  std::unordered_map<std::string, uint8_t> AvailableAttrs(
      const Candidate& cand) const {
    std::unordered_map<std::string, uint8_t> avail;
    if (cand.pieces.empty()) return avail;
    std::unordered_map<std::string, uint8_t> first;
    for (const ColumnBinding& b : cand.pieces[0].bindings) {
      first[b.prefix] |= b.attr;
    }
    for (auto& [prefix, attrs] : first) {
      uint8_t acc = attrs;
      for (size_t i = 1; i < cand.pieces.size() && acc != 0; ++i) {
        uint8_t here = 0;
        for (const ColumnBinding& b : cand.pieces[i].bindings) {
          if (b.prefix == prefix) here |= b.attr;
        }
        acc &= here;
      }
      if (acc != 0) avail[prefix] = acc;
    }
    return avail;
  }

  std::vector<Assignment> EnumerateAssignments(const Candidate& cand) const {
    std::vector<Assignment> out;
    if (cand.pieces.empty()) return out;
    std::unordered_map<std::string, uint8_t> avail = AvailableAttrs(cand);

    // Per column: prefixes whose attrs suffice and whose pinned paths pass
    // Prop 3.7. A piece whose pinned path is incompatible is tolerated when
    // a §4.6 label selection can filter its rows out (different label, L
    // stored); the containment tests remain the exactness arbiter.
    std::vector<std::vector<std::string>> choices(qi_.cols.size());
    for (size_t i = 0; i < qi_.cols.size(); ++i) {
      uint8_t need = qi_.col_attrs[i];
      const Pattern::Node& qnode = qi_.flat.node(qi_.cols[i]);
      for (const auto& [prefix, attrs] : avail) {
        if ((need & attrs) != need) continue;
        bool ok = true;
        bool any_path_match = false;
        for (const Piece& piece : cand.pieces) {
          auto bs = piece.FindPrefix(prefix);
          if (bs.empty()) {
            ok = false;
            break;
          }
          const ColumnBinding* b = bs[0];
          if (!b->skeleton || qi_.col_paths[i].empty()) {
            any_path_match = true;
            continue;
          }
          if (std::binary_search(qi_.col_paths[i].begin(),
                                 qi_.col_paths[i].end(), b->path)) {
            any_path_match = true;
            continue;
          }
          // Incompatible piece: only acceptable when σ L = label removes it.
          bool neutralizable =
              !qnode.IsWildcard() && (attrs & kAttrLabel) != 0 &&
              summary_.label(b->path) != qnode.label;
          if (!neutralizable) {
            ok = false;
            break;
          }
        }
        if (ok && any_path_match) choices[i].push_back(prefix);
      }
      if (choices[i].empty()) return out;
      std::sort(choices[i].begin(), choices[i].end());
    }

    // Cartesian product with per-piece preorder-order verification.
    std::vector<std::string> current(qi_.cols.size());
    EnumerateRec(cand, choices, 0, &current, &out);
    return out;
  }

  void EnumerateRec(const Candidate& cand,
                    const std::vector<std::vector<std::string>>& choices,
                    size_t i, std::vector<std::string>* current,
                    std::vector<Assignment>* out) const {
    if (out->size() >= options_.max_assignments) return;
    if (i == choices.size()) {
      if (OrderConsistent(cand, *current)) out->push_back({*current});
      return;
    }
    for (const std::string& prefix : choices[i]) {
      (*current)[i] = prefix;
      EnumerateRec(cand, choices, i + 1, current, out);
      if (out->size() >= options_.max_assignments) return;
    }
  }

  /// The chosen nodes must appear in piece preorder in column order, in
  /// every piece (containment compares return nodes positionally).
  bool OrderConsistent(const Candidate& cand,
                       const std::vector<std::string>& prefixes) const {
    for (const Piece& piece : cand.pieces) {
      std::vector<int32_t> ranks = PreorderRanks(piece.pattern);
      int32_t last = -1;
      for (const std::string& prefix : prefixes) {
        auto bs = piece.FindPrefix(prefix);
        if (bs.empty()) return false;
        int32_t r = ranks[static_cast<size_t>(bs[0]->node)];
        if (r <= last) return false;
        last = r;
      }
    }
    return true;
  }

  /// Builds the per-piece containment test patterns, collecting the §4.6
  /// label/value selections the plan must apply. Returns false when the
  /// assignment cannot be made valid.
  bool BuildTestPatterns(const Candidate& cand, const Assignment& asg,
                         std::vector<Pattern>* tps,
                         std::vector<PlanSelect>* selects) const {
    std::unordered_set<std::string> select_keys;
    for (const Piece& piece : cand.pieces) {
      Pattern tp = piece.pattern;
      for (PatternNodeId n = 0; n < tp.size(); ++n) {
        tp.mutable_node(n).attrs = 0;
      }
      for (size_t i = 0; i < asg.prefixes.size(); ++i) {
        const std::string& prefix = asg.prefixes[i];
        auto bs = piece.FindPrefix(prefix);
        SVX_CHECK(!bs.empty());
        PatternNodeId n = bs[0]->node;
        Pattern::Node& node = tp.mutable_node(n);
        node.attrs = qi_.col_attrs[i];

        const Pattern::Node& qnode =
            qi_.flat.node(qi_.cols[i]);
        // Label adaptation (§4.6): σ L = label narrows a wildcard node, and
        // also neutralizes pieces pinned to a different label (their test
        // pattern becomes S-unsatisfiable, matching the σ dropping all of
        // their rows).
        if (!qnode.IsWildcard() && node.label != qnode.label) {
          const ColumnBinding* lb = piece.Find(prefix, kAttrLabel);
          if (lb == nullptr) return false;
          node.label = qnode.label;
          std::string key = "L:" + prefix;
          if (select_keys.insert(key).second) {
            selects->push_back({SelectKind::kLabelEq, lb->col, qnode.label});
          }
        }
        // Value adaptation (§4.6): narrow by a value selection.
        if (!node.pred.Implies(qnode.pred)) {
          const ColumnBinding* vb = piece.Find(prefix, kAttrValue);
          if (vb == nullptr || qi_.col_optional[i]) return false;
          node.pred = node.pred.And(qnode.pred);
          std::string key = "V:" + prefix + ":" + qnode.pred.ToString();
          if (select_keys.insert(key).second) {
            selects->push_back(
                {SelectKind::kValuePred, vb->col, "", qnode.pred});
          }
        }
        // Optional strengthening: a piece node under optional edges can
        // serve a required query column when a ⊥-witness column exists —
        // σ ≠ ⊥ makes the path to the node required.
        if (!qi_.col_optional[i]) {
          bool under_optional = false;
          for (PatternNodeId cur = n; cur > 0;
               cur = tp.node(cur).parent) {
            under_optional = under_optional || tp.node(cur).optional;
          }
          if (under_optional) {
            const ColumnBinding* wb = piece.Find(prefix, kAttrId);
            if (wb == nullptr) wb = piece.Find(prefix, kAttrContent);
            if (wb == nullptr) wb = piece.Find(prefix, kAttrLabel);
            // A V column may be ⊥ for a matched but valueless node and
            // cannot witness the match.
            if (wb == nullptr) return false;
            for (PatternNodeId cur = n; cur > 0;
                 cur = tp.node(cur).parent) {
              tp.mutable_node(cur).optional = false;
            }
            std::string key = "N:" + prefix;
            if (select_keys.insert(key).second) {
              selects->push_back({SelectKind::kNonNull, wb->col, ""});
            }
          }
        }
      }
      tps->push_back(PruneAttrlessSubtrees(tp));
    }
    return true;
  }

  PlanPtr BuildProjectedPlan(const Candidate& cand, const Assignment& asg,
                             const std::vector<PlanSelect>& selects) const {
    PlanPtr plan = cand.plan->Clone();
    for (const PlanSelect& s : selects) {
      switch (s.kind) {
        case SelectKind::kLabelEq:
          plan = MakeSelectLabel(std::move(plan), s.col, s.label);
          break;
        case SelectKind::kValuePred:
          plan = MakeSelectValue(std::move(plan), s.col, s.pred);
          break;
        case SelectKind::kNonNull:
          plan = MakeSelectNonNull(std::move(plan), s.col);
          break;
        default:
          SVX_CHECK(false);
      }
    }
    // Projection: query columns in preorder, attrs in (id, l, v, c) order —
    // the ViewSchema layout.
    std::vector<int32_t> cols;
    for (size_t i = 0; i < asg.prefixes.size(); ++i) {
      for (uint8_t attr : {kAttrId, kAttrLabel, kAttrValue, kAttrContent}) {
        if ((qi_.col_attrs[i] & attr) == 0) continue;
        const ColumnBinding* b = cand.pieces[0].Find(asg.prefixes[i], attr);
        SVX_CHECK(b != nullptr);
        cols.push_back(b->col);
      }
    }
    PlanPtr projected = MakeProject(std::move(plan), cols);
    PruneUnusedAppendOps(projected.get());
    return projected;
  }

  /// Removes navfID / navC operators on the unary chain under `root` whose
  /// appended (suffix) columns no selection or projection above consumes.
  /// Splicing such an operator never shifts a retained index: its columns
  /// are the last ones of its output and nothing above references at or
  /// beyond them.
  static void PruneUnusedAppendOps(PlanNode* root) {
    bool changed = true;
    while (changed) {
      changed = false;
      // Collect consumed column indexes along the unary chain.
      std::vector<int32_t> used;
      for (PlanNode* node = root;
           node->children.size() == 1 &&
           (node->kind == PlanKind::kProject ||
            node->kind == PlanKind::kSelect ||
            node->kind == PlanKind::kDeriveParent ||
            node->kind == PlanKind::kNavigate);
           node = node->children[0].get()) {
        if (node->kind == PlanKind::kProject) {
          for (int32_t c : node->project_cols) used.push_back(c);
        } else if (node->kind == PlanKind::kSelect) {
          used.push_back(node->select_col);
        }
      }
      // Splice the topmost removable operator.
      for (PlanNode* parent = root;
           parent->children.size() == 1 && !changed;
           parent = parent->children[0].get()) {
        PlanNode* child = parent->children[0].get();
        if (child->kind != PlanKind::kDeriveParent &&
            child->kind != PlanKind::kNavigate) {
          continue;
        }
        int32_t lo = child->children[0]->schema.size();
        bool safe = true;
        for (int32_t c : used) safe = safe && c < lo;
        if (safe) {
          PlanPtr grandchild = std::move(child->children[0]);
          parent->children[0] = std::move(grandchild);
          changed = true;
        }
      }
      if (changed) RecomputeChainSchemas(root);
    }
  }

  /// Refreshes the cached output schemas of the unary chain after a splice
  /// (selects are width-preserving; derive/navigate re-append their suffix
  /// columns onto the new child schema).
  static void RecomputeChainSchemas(PlanNode* root) {
    std::vector<PlanNode*> chain;
    for (PlanNode* node = root;; node = node->children[0].get()) {
      chain.push_back(node);
      if (node->children.size() != 1 ||
          (node->kind != PlanKind::kProject &&
           node->kind != PlanKind::kSelect &&
           node->kind != PlanKind::kDeriveParent &&
           node->kind != PlanKind::kNavigate)) {
        break;
      }
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      PlanNode* node = *it;
      if (node->children.size() != 1) continue;
      const Schema& child = node->children[0]->schema;
      switch (node->kind) {
        case PlanKind::kSelect: {
          node->schema = child;
          break;
        }
        case PlanKind::kDeriveParent:
        case PlanKind::kNavigate: {
          int32_t appended =
              node->kind == PlanKind::kDeriveParent
                  ? 1
                  : __builtin_popcount(node->navigate_attrs);
          Schema fresh = child;
          for (int32_t k = node->schema.size() - appended;
               k < node->schema.size(); ++k) {
            fresh.Append(node->schema.column(k));
          }
          node->schema = std::move(fresh);
          break;
        }
        case PlanKind::kProject: {
          Schema fresh;
          for (int32_t c : node->project_cols) {
            fresh.Append(child.column(c));
          }
          node->schema = std::move(fresh);
          break;
        }
        default:
          break;
      }
    }
  }

  /// §4.6: re-nests the flat projected plan per the query's nested edges
  /// (deepest first), restoring the ViewSchema column layout after each
  /// grouping.
  PlanPtr AdaptNesting(PlanPtr plan) const {
    if (qi_.nested_edges.empty()) return plan;
    const Pattern& q = qi_.original;
    std::vector<int32_t> ranks = PreorderRanks(q);

    // Current layout: one item per column, tagged by representative q node.
    struct Item {
      PatternNodeId rep;
      int32_t order;  // tiebreak within a node (attr order)
    };
    std::vector<Item> items;
    int32_t seq = 0;
    for (size_t i = 0; i < qi_.cols.size(); ++i) {
      for (uint8_t attr : {kAttrId, kAttrLabel, kAttrValue, kAttrContent}) {
        if ((qi_.col_attrs[i] & attr) == 0) continue;
        items.push_back({qi_.cols[i], seq++});
      }
    }

    for (PatternNodeId m : qi_.nested_edges) {
      std::vector<int32_t> keys;
      std::vector<Item> key_items;
      for (size_t c = 0; c < items.size(); ++c) {
        if (!q.IsAncestorOrSelf(m, items[c].rep)) {
          keys.push_back(static_cast<int32_t>(c));
          key_items.push_back(items[c]);
        }
      }
      std::string name = StrFormat("g%d", m);
      plan = MakeGroupBy(std::move(plan), keys, name);
      items = key_items;
      items.push_back({m, seq++});

      // Restore preorder layout.
      std::vector<int32_t> perm(items.size());
      for (size_t c = 0; c < perm.size(); ++c) {
        perm[c] = static_cast<int32_t>(c);
      }
      std::stable_sort(perm.begin(), perm.end(), [&](int32_t x, int32_t y) {
        int32_t rx = ranks[static_cast<size_t>(items[static_cast<size_t>(x)].rep)];
        int32_t ry = ranks[static_cast<size_t>(items[static_cast<size_t>(y)].rep)];
        if (rx != ry) return rx < ry;
        return items[static_cast<size_t>(x)].order <
               items[static_cast<size_t>(y)].order;
      });
      bool identity = true;
      for (size_t c = 0; c < perm.size(); ++c) {
        identity = identity && perm[c] == static_cast<int32_t>(c);
      }
      if (!identity) {
        std::vector<Item> reordered;
        for (int32_t x : perm) {
          reordered.push_back(items[static_cast<size_t>(x)]);
        }
        plan = MakeProject(std::move(plan), perm);
        items = std::move(reordered);
      }
    }
    return plan;
  }

  const Summary& summary_;
  const RewriterOptions& options_;
  const QueryInfo& qi_;
  ContainmentMemo* memo_;
  RewriteStats* stats_;
  std::vector<Partial> partials_;
  std::unordered_set<std::string> result_compacts_;  // dedup of *results
  std::unordered_set<std::string> partial_keys_;     // dedup of partials_
  /// modS(q.flat), built lazily (0 = not built, 1 = ready, -1 = failed).
  int q_model_state_ = 0;
  std::vector<CanonicalTree> q_model_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Rewriter
// ---------------------------------------------------------------------------

Rewriter::Rewriter(const Summary& summary, RewriterOptions options)
    : summary_(summary), options_(std::move(options)) {}

void Rewriter::AddView(ViewDef def) { views_.push_back(std::move(def)); }

Result<std::vector<Rewriting>> Rewriter::Rewrite(const Pattern& q,
                                                 RewriteStats* stats) {
  Timer total_timer;
  if (q.size() == 0 || q.Arity() == 0) {
    return Status::InvalidArgument("query must have return nodes");
  }
  // Stats are also the feed for the process metrics, so they are always
  // collected; callers who pass nullptr just don't see them.
  RewriteStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  const size_t pruned0 = stats->candidates_pruned;
  const size_t eq0 = stats->equivalence_tests;
  const size_t jc0 = stats->join_candidates;

  // Opt-in tracing: one "rewrite" span with a child per phase. The phases
  // are sequential, so a single cursor span that begin_phase() closes and
  // reopens is enough.
  ScopedSpan rewrite_span(options_.trace, "rewrite");
  TraceSpan* phase = nullptr;
  auto begin_phase = [&](const char* name) {
    if (phase != nullptr) phase->End();
    phase = rewrite_span.get() != nullptr
                ? rewrite_span.get()->StartChild(name)
                : nullptr;
  };
  auto end_phases = [&]() {
    if (phase != nullptr) phase->End();
    phase = nullptr;
  };
  auto record_metrics = [&](size_t num_results) {
    metrics::RewriteCalls()->Add(1);
    metrics::RewriteResults()->Add(static_cast<int64_t>(num_results));
    metrics::RewriteCandidatesBuilt()->Add(
        static_cast<int64_t>(stats->candidates_built) +
        static_cast<int64_t>(stats->join_candidates - jc0));
    metrics::RewriteCandidatesPruned()->Add(
        static_cast<int64_t>(stats->candidates_pruned - pruned0));
    metrics::RewriteEquivalenceTests()->Add(
        static_cast<int64_t>(stats->equivalence_tests - eq0));
    metrics::RewriteLatencyUs()->Observe(
        static_cast<int64_t>(total_timer.ElapsedMicros()));
    rewrite_span.Attr("results", num_results);
    rewrite_span.Attr("candidates_pruned", stats->candidates_pruned - pruned0);
    rewrite_span.Attr("equivalence_tests", stats->equivalence_tests - eq0);
  };

  begin_phase("analyze");
  QueryInfo qi = AnalyzeQuery(q, summary_);

  // ---- Setup: Prop 3.4 pruning + view expansion. ----
  begin_phase("prune-views");
  stats->views_total = views_.size();
  const bool use_index = options_.use_view_index;
  const ViewIndex* index = nullptr;
  if (use_index) {
    if (options_.shared_view_index != nullptr &&
        options_.shared_view_index->size() ==
            static_cast<int32_t>(views_.size())) {
      index = options_.shared_view_index;
    } else {
      if (index_ == nullptr) {
        index_ = std::make_unique<ViewIndex>(summary_, options_.expansion);
      }
      while (index_->size() < static_cast<int32_t>(views_.size())) {
        index_->AddView(views_[static_cast<size_t>(index_->size())]);
      }
      index = index_.get();
    }
  }
  PathBitset related_bits;
  if (use_index) {
    related_bits = MakePathBitset(summary_.size());
    for (PathId s = 0; s < summary_.size(); ++s) {
      if (qi.related_path[static_cast<size_t>(s)]) {
        PathBitsetSet(&related_bits, s);
      }
    }
  }
  std::vector<const ViewDef*> kept;
  std::vector<size_t> kept_idx;  // positions in views_
  for (size_t vi = 0; vi < views_.size(); ++vi) {
    bool keep = !options_.prune_views ||
                (use_index ? index->Related(vi, related_bits)
                           : ViewRelated(views_[vi], qi, summary_));
    if (keep) {
      kept.push_back(&views_[vi]);
      kept_idx.push_back(vi);
    }
  }
  stats->views_kept = kept.size();
  if (phase != nullptr) {
    phase->AddAttr("views_total", views_.size());
    phase->AddAttr("views_kept", kept.size());
  }

  // ---- Column coverage: whole-query early-out. ----
  std::unique_ptr<CoverageAnalysis> cover;
  if (use_index) {
    int32_t cols = static_cast<int32_t>(qi.cols.size());
    if (cols > 0 && cols <= CoverageAnalysis::kMaxCols) {
      // Per column: feasible paths as a bitset; a column inside an optional
      // subtree may have none — then the assignment path check is skipped,
      // so any path serves (all-ones).
      std::vector<PathBitset> col_bits;
      for (int32_t i = 0; i < cols; ++i) {
        PathBitset b = MakePathBitset(summary_.size());
        if (qi.col_paths[static_cast<size_t>(i)].empty()) {
          for (uint64_t& w : b) w = ~uint64_t{0};
        } else {
          for (PathId s : qi.col_paths[static_cast<size_t>(i)]) {
            PathBitsetSet(&b, s);
          }
        }
        col_bits.push_back(std::move(b));
      }
      std::vector<uint32_t> view_masks;
      view_masks.reserve(kept_idx.size());
      for (size_t vi : kept_idx) {
        uint32_t mask = 0;
        for (int32_t i = 0; i < cols; ++i) {
          const Pattern::Node& qnode =
              qi.flat.node(qi.cols[static_cast<size_t>(i)]);
          if (index->CanServe(vi, qi.col_attrs[static_cast<size_t>(i)],
                              col_bits[static_cast<size_t>(i)], qnode)) {
            mask |= uint32_t{1} << i;
          }
        }
        view_masks.push_back(mask);
      }
      cover = std::make_unique<CoverageAnalysis>(cols, std::move(view_masks));
      if (!cover->enabled()) cover.reset();
    }
  }
  if (cover != nullptr && !cover->Extendable(0, 0, options_.max_plan_views)) {
    // No combination of ≤ max_plan_views views can serve every return
    // column, so neither a candidate, a join, nor a union of partial
    // covers (each of which serves all columns) can exist.
    stats->candidates_pruned += kept.size();
    stats->setup_ms = total_timer.ElapsedMillis();
    stats->total_ms = total_timer.ElapsedMillis();
    end_phases();
    record_metrics(0);
    return std::vector<Rewriting>{};
  }

  begin_phase("expand-views");
  std::vector<Candidate> m0;
  std::vector<uint32_t> m0_masks;  // aligned serve masks (0 without cover)
  int instance = 0;
  for (size_t k = 0; k < kept.size(); ++k) {
    Result<std::vector<Candidate>> expanded =
        ExpandView(*kept[k], summary_, qi.labels, options_.expansion);
    if (!expanded.ok()) continue;  // over-budget views are skipped
    for (Candidate& c : *expanded) {
      RetagPieces(&c.pieces, StrFormat("i%d.", instance++));
      m0.push_back(std::move(c));
      m0_masks.push_back(cover != nullptr ? cover->ViewMask(k) : 0);
      if (m0.size() >= options_.max_candidates) break;
    }
    if (m0.size() >= options_.max_candidates) break;
  }
  // Search-order heuristic: candidates whose attributed nodes sit on exact
  // query paths first — the budgeted join enumeration reaches the useful
  // combinations sooner.
  auto exactness = [&](const Candidate& c) {
    for (const Piece& piece : c.pieces) {
      for (const ColumnBinding& b : piece.bindings) {
        if (b.skeleton && b.path != kInvalidPath &&
            qi.assoc_exact[static_cast<size_t>(b.path)]) {
          return 0;
        }
      }
    }
    return 1;
  };
  std::vector<size_t> order(m0.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return exactness(m0[a]) < exactness(m0[b]);
  });

  stats->candidates_built = m0.size();
  stats->setup_ms = total_timer.ElapsedMillis();
  if (phase != nullptr) phase->AddAttr("candidates", m0.size());

  std::vector<Rewriting> results;
  ContainmentMemo local_memo;
  ContainmentMemo* memo =
      options_.memo != nullptr
          ? options_.memo
          : (options_.memoize_containment ? &local_memo : nullptr);
  size_t memo_hits0 = memo != nullptr ? memo->hits() : 0;
  size_t memo_misses0 = memo != nullptr ? memo->misses() : 0;
  RewriteSession session(summary_, options_, qi, memo, stats);
  auto note_first = [&]() {
    if (stats != nullptr && stats->first_ms < 0 && !results.empty()) {
      stats->first_ms = total_timer.ElapsedMillis();
    }
  };
  auto over_time_budget = [&]() {
    if (total_timer.ElapsedMillis() <= options_.time_budget_ms) return false;
    if (stats != nullptr) stats->time_budget_hit = true;
    return true;
  };

  const bool use_dp = options_.use_dp_enumeration && cover != nullptr;
  if (use_dp) {
    // ---- DP plan enumeration (replaces phases A and B in one pass). ----
    begin_phase("plan-enum");
    Timer enum_timer;
    // Without a configured cost model the enumerator still needs a ranking
    // signal; a default-constructed model (every view at default_rows) is
    // deterministic and keeps the search reproducible.
    CostModel fallback_model;
    const CostModel* cm = options_.cost_model != nullptr ? options_.cost_model
                                                         : &fallback_model;
    PlanEnumerator::Options popts;
    popts.max_plan_views = options_.max_plan_views;
    popts.max_table = options_.max_plan_table;
    popts.max_frontier = options_.max_pieces;
    popts.max_merged_pieces = options_.expansion.max_pieces;
    popts.prune_same_pattern = options_.prune_same_pattern;
    PlanEnumerator enumerator(summary_, *cm, qi.join_relevant, *cover,
                              popts);
    for (size_t i : order) {
      enumerator.AddBase(std::move(m0[i]), m0_masks[i]);
    }
    // The branch-and-bound bound: cheapest estimated cost over the
    // rewritings found so far. A final plan costs at least its candidate
    // plan (adaptation operators only add cost), so candidates at or above
    // this bound cannot improve the result set.
    double best_found = std::numeric_limits<double>::infinity();
    auto on_cover = [&](const Candidate& cand,
                        double) -> PlanEnumerator::MatchOutcome {
      size_t before = results.size();
      bool stop = session.TryMatch(cand, &results);
      note_first();
      for (size_t r = before; r < results.size(); ++r) {
        best_found =
            std::min(best_found, cm->EstimateCost(*results[r].plan));
      }
      return {stop, best_found};
    };
    enumerator.Run(on_cover, over_time_budget);
    const PlanEnumerator::Stats& es = enumerator.stats();
    stats->join_candidates += es.joins;
    stats->plans_generated += es.generated;
    stats->plans_dominated += es.dominated;
    stats->plans_retained += es.retained;
    stats->candidates_pruned += es.coverage_pruned + es.cost_pruned;
    stats->search_truncated = stats->search_truncated || es.truncated;
    metrics::PlansGenerated()->Add(static_cast<int64_t>(es.generated));
    metrics::PlansDominated()->Add(static_cast<int64_t>(es.dominated));
    metrics::PlanEnumLatencyUs()->Observe(
        static_cast<int64_t>(enum_timer.ElapsedMicros()));
    if (phase != nullptr) {
      phase->AddAttr("plans_generated", es.generated);
      phase->AddAttr("plans_dominated", es.dominated);
      phase->AddAttr("plans_retained", es.retained);
      phase->AddAttr("beam_skipped", es.beam_skipped);
      phase->AddAttr("results", results.size());
    }
  } else {
  // ---- Phase B state (built first so phase A shares the caches). ----
  std::vector<Candidate> m;
  std::vector<CandInfo> info;
  size_t legacy_dominated = 0;
  m.reserve(m0.size());
  info.reserve(m0.size());
  for (size_t i : order) {
    info.push_back(BuildCandInfo(m0[i], qi.join_relevant, summary_,
                                 m0_masks[i], CandidateCanonicalHash(m0[i])));
    m.push_back(std::move(m0[i]));
  }
  // Candidate dedup, two-level: canonical hash buckets, with the (rarely
  // needed) full canonical strings as the arbiter on hash collisions.
  std::unordered_map<uint64_t, std::vector<size_t>> seen_patterns;
  for (size_t i = 0; i < m.size(); ++i) {
    seen_patterns[info[i].canon_hash].push_back(i);
  }

  // ---- Phase A: single-view candidates. ----
  begin_phase("match-single-views");
  for (size_t i = 0; i < m.size(); ++i) {
    if (cover != nullptr && !cover->Covers(info[i].serve_mask)) {
      // The candidate's views provably cannot serve every column, so
      // TryMatch would enumerate no assignment; skipping it is a no-op.
      if (stats != nullptr) ++stats->candidates_pruned;
      continue;
    }
    if (session.TryMatch(m[i], &results)) break;
    note_first();
    if (over_time_budget()) break;
  }
  note_first();
  if (phase != nullptr) phase->AddAttr("results", results.size());

  // ---- Phase B: left-deep join enumeration (Algorithm 1 lines 2-11). ----
  begin_phase("enumerate-joins");
  size_t frontier_begin = 0;
  size_t total_candidates = m.size();
  bool done = results.size() >= options_.max_results ||
              (options_.stop_at_first && !results.empty());

  while (!done && frontier_begin < m.size() && !over_time_budget()) {
    size_t frontier_end = m.size();
    for (size_t ci = frontier_begin; ci < frontier_end && !done; ++ci) {
      for (size_t cj = 0; cj < frontier_end && !done; ++cj) {
        // Right operand drawn from the initial set only (left-deep plans).
        if (m[cj].used_views.size() != 1) continue;
        size_t used_total =
            m[ci].used_views.size() + m[cj].used_views.size();
        if (static_cast<int32_t>(used_total) > options_.max_plan_views) {
          continue;
        }
        // Coverage pruning: this pair — and hence every left-deep extension
        // of it — can never serve all query columns, so neither results
        // nor union partials can come out of it.
        if (cover != nullptr &&
            !cover->Extendable(info[ci].serve_mask | info[cj].serve_mask,
                               used_total, options_.max_plan_views)) {
          if (stats != nullptr) ++stats->candidates_pruned;
          continue;
        }
        if (over_time_budget()) break;

        // Note: m and info grow inside the loop body, so every reference
        // into them is re-resolved per iteration (push_back may reallocate).
        size_t num_pi = info[ci].rel_prefixes.size();
        size_t num_pj = info[cj].rel_prefixes.size();
        for (size_t ai = 0; ai < num_pi; ++ai) {
          for (size_t bj = 0; bj < num_pj; ++bj) {
            for (JoinType type :
                 {JoinType::kEq, JoinType::kParent, JoinType::kAncestor}) {
              for (bool i_is_ancestor : {true, false}) {
                if (type == JoinType::kEq && !i_is_ancestor) continue;
                if (done) break;
                const Candidate& anc = i_is_ancestor ? m[ci] : m[cj];
                const Candidate& desc = i_is_ancestor ? m[cj] : m[ci];
                const CandInfo& anc_info = i_is_ancestor ? info[ci] : info[cj];
                const CandInfo& desc_info = i_is_ancestor ? info[cj] : info[ci];
                size_t anc_pidx = i_is_ancestor ? ai : bj;
                size_t desc_pidx = i_is_ancestor ? bj : ai;
                const std::string& anc_prefix =
                    anc_info.rel_prefixes[anc_pidx];
                const std::string& desc_prefix =
                    desc_info.rel_prefixes[desc_pidx];
                // Bitset pre-pass: a few word ANDs decide whether ANY piece
                // pair is path-compatible under this join type.
                if (!PrefixSetsJoin(anc_info.prefix_sets[anc_pidx],
                                    desc_info.prefix_sets[desc_pidx], type)) {
                  continue;
                }
                const std::vector<PathId>& anc_paths =
                    anc_info.prefix_paths[anc_pidx];
                const std::vector<PathId>& desc_paths =
                    desc_info.prefix_paths[desc_pidx];

                // Integer pre-pass over the pinned join paths: merging can
                // only produce pieces for path-compatible piece pairs. When
                // neither side has predicates, every compatible pair merges
                // successfully, so a pair count beyond max_pieces discards
                // the combination before any merge (the merge loop below
                // would discard it after max_pieces wasted merges).
                size_t compatible = 0;
                for (size_t x = 0; x < anc_paths.size(); ++x) {
                  for (size_t y = 0; y < desc_paths.size(); ++y) {
                    compatible += PiecePathsJoin(summary_, anc_paths[x],
                                                 desc_paths[y], type)
                                      ? 1
                                      : 0;
                  }
                }
                if (compatible == 0) continue;
                if (compatible > options_.expansion.max_pieces &&
                    !anc_info.has_preds && !desc_info.has_preds) {
                  // Certain piece overflow: the discarded combination may
                  // hide a valid rewriting, so the search result is
                  // incomplete (and must not be cached).
                  if (stats != nullptr) stats->search_truncated = true;
                  continue;
                }

                int32_t shift = anc.plan->schema.size();
                std::vector<Piece> merged;
                bool over_budget = false;
                for (size_t x = 0; x < anc.pieces.size() && !over_budget;
                     ++x) {
                  for (size_t y = 0; y < desc.pieces.size(); ++y) {
                    Piece out;
                    if (PiecePathsJoin(summary_, anc_paths[x], desc_paths[y],
                                       type) &&
                        MergePieces(summary_, anc.pieces[x], anc_prefix,
                                    desc.pieces[y], desc_prefix, type, shift,
                                    &out)) {
                      merged.push_back(std::move(out));
                    }
                    if (merged.size() > options_.expansion.max_pieces) {
                      over_budget = true;
                      break;
                    }
                  }
                }
                if (over_budget) {
                  if (stats != nullptr) stats->search_truncated = true;
                  continue;
                }
                if (merged.empty()) continue;

                Candidate joined;
                joined.pieces = std::move(merged);
                joined.used_views = anc.used_views;
                joined.used_views.insert(joined.used_views.end(),
                                         desc.used_views.begin(),
                                         desc.used_views.end());
                // Prefixes are unique per instance and both sides came from
                // distinct instances, so no retagging is needed here.

                // Prop 3.5: skip when the joined pattern set coincides with
                // a child's; global dedup otherwise. Hashes first — the
                // full canonical strings are only built on a hash match.
                uint64_t jhash = CandidateCanonicalHash(joined);
                if (options_.prune_same_pattern &&
                    ((jhash == anc_info.canon_hash &&
                      CandidatesCanonicalEqual(joined, anc)) ||
                     (jhash == desc_info.canon_hash &&
                      CandidatesCanonicalEqual(joined, desc)))) {
                  ++legacy_dominated;
                  continue;
                }
                std::vector<size_t>& bucket = seen_patterns[jhash];
                bool duplicate = false;
                for (size_t idx : bucket) {
                  if (CandidatesCanonicalEqual(m[idx], joined)) {
                    duplicate = true;
                    break;
                  }
                }
                if (duplicate) {
                  ++legacy_dominated;
                  continue;
                }
                if (total_candidates >= options_.max_candidates) {
                  done = true;
                  break;
                }
                bucket.push_back(m.size());
                ++total_candidates;
                if (stats != nullptr) ++stats->join_candidates;

                int32_t anc_col =
                    anc.pieces[0].Find(anc_prefix, kAttrId)->col;
                int32_t desc_col =
                    desc.pieces[0].Find(desc_prefix, kAttrId)->col;
                PlanPtr left = anc.plan->Clone();
                PlanPtr right = desc.plan->Clone();
                PlanPtr jplan;
                switch (type) {
                  case JoinType::kEq:
                    jplan = MakeIdEqJoin(std::move(left), std::move(right),
                                         anc_col, desc_col);
                    break;
                  case JoinType::kParent:
                    jplan = MakeStructJoin(std::move(left), std::move(right),
                                           anc_col, desc_col,
                                           StructAxis::kParent);
                    break;
                  case JoinType::kAncestor:
                    jplan = MakeStructJoin(std::move(left), std::move(right),
                                           anc_col, desc_col,
                                           StructAxis::kAncestor);
                    break;
                }
                joined.plan = std::move(jplan);

                uint32_t joined_mask =
                    info[ci].serve_mask | info[cj].serve_mask;
                if (cover != nullptr && !cover->Covers(joined_mask)) {
                  // Useful only as a future join operand: TryMatch would
                  // enumerate no assignment (see phase A).
                  if (stats != nullptr) ++stats->candidates_pruned;
                } else {
                  done = session.TryMatch(joined, &results) || done;
                  note_first();
                }
                info.push_back(BuildCandInfo(joined, qi.join_relevant,
                                             summary_, joined_mask, jhash));
                m.push_back(std::move(joined));
              }
              if (done) break;
            }
            if (done) break;
          }
          if (done) break;
        }
      }
    }
    frontier_begin = frontier_end;
    done = done || results.size() >= options_.max_results ||
           (options_.stop_at_first && !results.empty());
  }

  if (phase != nullptr) {
    phase->AddAttr("join_candidates", stats->join_candidates - jc0);
  }
  // Comparable plan accounting for the exhaustive path: every candidate
  // (initial or joined) is a generated plan, canonical-duplicate and
  // Prop 3.5 discards are the only dominance the path has, and the whole
  // table is retained to the end.
  stats->plans_generated += m.size() + legacy_dominated;
  stats->plans_dominated += legacy_dominated;
  stats->plans_retained += m.size();
  metrics::PlansGenerated()->Add(
      static_cast<int64_t>(m.size() + legacy_dominated));
  metrics::PlansDominated()->Add(static_cast<int64_t>(legacy_dominated));
  }  // use_dp

  // ---- Union phase (Algorithm 1 lines 13-14). ----
  begin_phase("union-partials");
  if (!(options_.stop_at_first && !results.empty())) {
    session.UnionPhase(&results);
    note_first();
  }

  // ---- Cost-based selection: rank the covers, cheapest plan first. ----
  begin_phase("rank-by-cost");
  if (options_.cost_model != nullptr && !results.empty()) {
    for (Rewriting& r : results) {
      r.est_cost = options_.cost_model->EstimateCost(*r.plan);
    }
    std::stable_sort(results.begin(), results.end(),
                     [](const Rewriting& a, const Rewriting& b) {
                       if (a.est_cost != b.est_cost) {
                         return a.est_cost < b.est_cost;
                       }
                       return a.compact < b.compact;
                     });
    stats->cheapest_cost = results.front().est_cost;
    stats->costliest_cost = results.back().est_cost;
  }

  stats->results = results.size();
  if (memo != nullptr) {
    stats->containment_memo_hits += memo->hits() - memo_hits0;
    stats->containment_memo_misses += memo->misses() - memo_misses0;
  }
  stats->total_ms = total_timer.ElapsedMillis();
  end_phases();
  record_metrics(results.size());
  return results;
}

}  // namespace svx
