#include "src/rewriting/view.h"

#include "src/util/strings.h"

namespace svx {

namespace {

std::string ColumnPrefix(const std::string& view_name, PatternNodeId n) {
  return StrFormat("%s.n%d", view_name.c_str(), n);
}

/// Appends the attribute columns of `n` itself.
void AppendOwnColumns(const Pattern& p, PatternNodeId n,
                      const std::string& view_name, Schema* schema) {
  const Pattern::Node& node = p.node(n);
  std::string prefix = ColumnPrefix(view_name, n);
  if (node.attrs & kAttrId) {
    schema->Append({prefix + ".id", ColumnKind::kId, nullptr});
  }
  if (node.attrs & kAttrLabel) {
    schema->Append({prefix + ".l", ColumnKind::kLabel, nullptr});
  }
  if (node.attrs & kAttrValue) {
    schema->Append({prefix + ".v", ColumnKind::kValue, nullptr});
  }
  if (node.attrs & kAttrContent) {
    schema->Append({prefix + ".c", ColumnKind::kContent, nullptr});
  }
}

/// Schema of the pattern subtree rooted at `n` (own attrs, then children;
/// nested children collapse into one nested column).
Schema SubtreeSchema(const Pattern& p, PatternNodeId n,
                     const std::string& view_name) {
  Schema schema;
  AppendOwnColumns(p, n, view_name, &schema);
  for (PatternNodeId m : p.node(n).children) {
    Schema child = SubtreeSchema(p, m, view_name);
    if (p.node(m).nested) {
      schema.Append({ColumnPrefix(view_name, m) + ".g", ColumnKind::kNested,
                     std::make_shared<Schema>(std::move(child))});
    } else {
      for (const ColumnSpec& c : child.columns()) schema.Append(c);
    }
  }
  return schema;
}

class Materializer {
 public:
  Materializer(const Pattern& p, const std::string& view_name,
               const Document& doc)
      : p_(p), view_name_(view_name), doc_(doc) {}

  Table Run() {
    Schema schema = SubtreeSchema(p_, p_.root(), view_name_);
    Table out(schema);
    if (Matches(p_.root(), doc_.root())) {
      for (Tuple& row : MatchSub(p_.root(), doc_.root())) {
        out.AddRow(std::move(row));
      }
    }
    out.Deduplicate();
    return out;
  }

 private:
  bool Matches(PatternNodeId pn, NodeIndex dn) const {
    const Pattern::Node& node = p_.node(pn);
    if (!node.IsWildcard() && doc_.label(dn) != node.label) return false;
    if (node.pred.IsTrue()) return true;
    return doc_.has_value(dn) && node.pred.ContainsValue(doc_.value(dn));
  }

  std::vector<NodeIndex> Candidates(PatternNodeId pn, NodeIndex dn) const {
    const Pattern::Node& node = p_.node(pn);
    std::vector<NodeIndex> out;
    if (node.axis == Axis::kChild) {
      for (NodeIndex c = doc_.first_child(dn); c != kInvalidNode;
           c = doc_.next_sibling(c)) {
        if (Matches(pn, c)) out.push_back(c);
      }
    } else {
      for (NodeIndex c = dn + 1; c < doc_.subtree_end(dn); ++c) {
        if (Matches(pn, c)) out.push_back(c);
      }
    }
    return out;
  }

  /// Width (column count) of the subtree rooted at `n` at this nesting
  /// level (nested children count as one column).
  int32_t SubtreeWidth(PatternNodeId n) const {
    const Pattern::Node& node = p_.node(n);
    int32_t w = __builtin_popcount(node.attrs);
    for (PatternNodeId m : node.children) {
      w += p_.node(m).nested ? 1 : SubtreeWidth(m);
    }
    return w;
  }

  Tuple OwnValues(PatternNodeId pn, NodeIndex dn) const {
    const Pattern::Node& node = p_.node(pn);
    Tuple out;
    if (node.attrs & kAttrId) out.emplace_back(doc_.ord_path(dn));
    if (node.attrs & kAttrLabel) out.emplace_back(doc_.label(dn));
    if (node.attrs & kAttrValue) {
      if (doc_.has_value(dn)) {
        out.emplace_back(doc_.value(dn));
      } else {
        out.emplace_back();
      }
    }
    if (node.attrs & kAttrContent) out.emplace_back(NodeRef{&doc_, dn});
    return out;
  }

  /// Rows of the subtree pattern rooted at `pn`, given pn bound to `dn`.
  /// Requires Matches(pn, dn).
  std::vector<Tuple> MatchSub(PatternNodeId pn, NodeIndex dn) {
    std::vector<Tuple> rows{OwnValues(pn, dn)};
    for (PatternNodeId m : p_.node(pn).children) {
      const Pattern::Node& child = p_.node(m);
      std::vector<Tuple> sub;
      for (NodeIndex cand : Candidates(m, dn)) {
        std::vector<Tuple> s = MatchSub(m, cand);
        sub.insert(sub.end(), std::make_move_iterator(s.begin()),
                   std::make_move_iterator(s.end()));
      }
      if (child.nested) {
        // One nested-table value groups all bindings (possibly none —
        // Figure 12 keeps empty tables).
        Schema nested_schema = SubtreeSchema(p_, m, view_name_);
        auto nested = std::make_shared<Table>(nested_schema);
        for (Tuple& t : sub) nested->AddRow(std::move(t));
        nested->Deduplicate();
        Value v{TablePtr(nested)};
        for (Tuple& r : rows) r.push_back(v);
        continue;
      }
      if (sub.empty()) {
        if (!child.optional) return {};
        // ⊥-padding (§4.3).
        sub.emplace_back(static_cast<size_t>(SubtreeWidth(m)));
      }
      // Cartesian combination.
      std::vector<Tuple> combined;
      combined.reserve(rows.size() * sub.size());
      for (const Tuple& a : rows) {
        for (const Tuple& b : sub) {
          Tuple r = a;
          r.insert(r.end(), b.begin(), b.end());
          combined.push_back(std::move(r));
        }
      }
      rows = std::move(combined);
    }
    return rows;
  }

  const Pattern& p_;
  const std::string& view_name_;
  const Document& doc_;
};

}  // namespace

Schema ViewSchema(const Pattern& pattern, const std::string& view_name) {
  return SubtreeSchema(pattern, pattern.root(), view_name);
}

Table MaterializeView(const Pattern& pattern, const std::string& view_name,
                      const Document& doc) {
  return Materializer(pattern, view_name, doc).Run();
}

std::vector<MaterializedView> MaterializeAll(const std::vector<ViewDef>& defs,
                                             const Document& doc) {
  std::vector<MaterializedView> out;
  out.reserve(defs.size());
  for (const ViewDef& def : defs) {
    out.push_back(
        {def, MaterializeView(def.pattern, def.name, doc)});
  }
  return out;
}

}  // namespace svx
