#include "src/rewriting/view.h"

#include "src/util/strings.h"

namespace svx {

namespace {

std::string ColumnPrefix(const std::string& view_name, PatternNodeId n) {
  return StrFormat("%s.n%d", view_name.c_str(), n);
}

/// Appends the attribute columns of `n` itself.
void AppendOwnColumns(const Pattern& p, PatternNodeId n,
                      const std::string& view_name, Schema* schema) {
  const Pattern::Node& node = p.node(n);
  std::string prefix = ColumnPrefix(view_name, n);
  if (node.attrs & kAttrId) {
    schema->Append({prefix + ".id", ColumnKind::kId, nullptr});
  }
  if (node.attrs & kAttrLabel) {
    schema->Append({prefix + ".l", ColumnKind::kLabel, nullptr});
  }
  if (node.attrs & kAttrValue) {
    schema->Append({prefix + ".v", ColumnKind::kValue, nullptr});
  }
  if (node.attrs & kAttrContent) {
    schema->Append({prefix + ".c", ColumnKind::kContent, nullptr});
  }
}

/// Schema of the pattern subtree rooted at `n` (own attrs, then children;
/// nested children collapse into one nested column).
Schema SubtreeSchema(const Pattern& p, PatternNodeId n,
                     const std::string& view_name) {
  Schema schema;
  AppendOwnColumns(p, n, view_name, &schema);
  for (PatternNodeId m : p.node(n).children) {
    Schema child = SubtreeSchema(p, m, view_name);
    if (p.node(m).nested) {
      schema.Append({ColumnPrefix(view_name, m) + ".g", ColumnKind::kNested,
                     std::make_shared<Schema>(std::move(child))});
    } else {
      for (const ColumnSpec& c : child.columns()) schema.Append(c);
    }
  }
  return schema;
}

}  // namespace

bool PatternNodeMatches(const Pattern& p, PatternNodeId pn,
                        const Document& doc, NodeIndex dn) {
  const Pattern::Node& node = p.node(pn);
  if (!node.IsWildcard() && doc.label(dn) != node.label) return false;
  if (node.pred.IsTrue()) return true;
  return doc.has_value(dn) && node.pred.ContainsValue(doc.value(dn));
}

std::vector<NodeIndex> PatternCandidates(const Pattern& p, PatternNodeId pn,
                                         const Document& doc, NodeIndex dn) {
  const Pattern::Node& node = p.node(pn);
  std::vector<NodeIndex> out;
  if (node.axis == Axis::kChild) {
    for (NodeIndex c = doc.first_child(dn); c != kInvalidNode;
         c = doc.next_sibling(c)) {
      if (PatternNodeMatches(p, pn, doc, c)) out.push_back(c);
    }
  } else {
    for (NodeIndex c = dn + 1; c < doc.subtree_end(dn); ++c) {
      if (PatternNodeMatches(p, pn, doc, c)) out.push_back(c);
    }
  }
  return out;
}

Tuple PatternOwnValues(const Pattern& p, PatternNodeId pn,
                       const Document& doc, NodeIndex dn) {
  const Pattern::Node& node = p.node(pn);
  Tuple out;
  if (node.attrs & kAttrId) out.emplace_back(doc.ord_path(dn));
  if (node.attrs & kAttrLabel) out.emplace_back(doc.label(dn));
  if (node.attrs & kAttrValue) {
    if (doc.has_value(dn)) {
      out.emplace_back(doc.value(dn));
    } else {
      out.emplace_back();
    }
  }
  if (node.attrs & kAttrContent) out.emplace_back(NodeRef{&doc, dn});
  return out;
}

int32_t PatternSubtreeWidth(const Pattern& p, PatternNodeId n) {
  const Pattern::Node& node = p.node(n);
  int32_t w = __builtin_popcount(node.attrs);
  for (PatternNodeId m : node.children) {
    w += p.node(m).nested ? 1 : PatternSubtreeWidth(p, m);
  }
  return w;
}

std::vector<Tuple> MaterializeSubtreeRows(const Pattern& p, PatternNodeId pn,
                                          const std::string& view_name,
                                          const Document& doc, NodeIndex dn) {
  std::vector<Tuple> rows{PatternOwnValues(p, pn, doc, dn)};
  for (PatternNodeId m : p.node(pn).children) {
    const Pattern::Node& child = p.node(m);
    std::vector<Tuple> sub;
    for (NodeIndex cand : PatternCandidates(p, m, doc, dn)) {
      std::vector<Tuple> s = MaterializeSubtreeRows(p, m, view_name, doc,
                                                    cand);
      sub.insert(sub.end(), std::make_move_iterator(s.begin()),
                 std::make_move_iterator(s.end()));
    }
    if (child.nested) {
      // One nested-table value groups all bindings (possibly none —
      // Figure 12 keeps empty tables). Canonically ordered so equal groups
      // serialize identically regardless of how they were produced.
      Schema nested_schema = SubtreeSchema(p, m, view_name);
      auto nested = std::make_shared<Table>(nested_schema);
      for (Tuple& t : sub) nested->AddRow(std::move(t));
      nested->Deduplicate();
      nested->SortRowsCanonical();
      Value v{TablePtr(nested)};
      for (Tuple& r : rows) r.push_back(v);
      continue;
    }
    if (sub.empty()) {
      if (!child.optional) return {};
      // ⊥-padding (§4.3).
      sub.emplace_back(static_cast<size_t>(PatternSubtreeWidth(p, m)));
    }
    // Cartesian combination.
    std::vector<Tuple> combined;
    combined.reserve(rows.size() * sub.size());
    for (const Tuple& a : rows) {
      for (const Tuple& b : sub) {
        Tuple r = a;
        r.insert(r.end(), b.begin(), b.end());
        combined.push_back(std::move(r));
      }
    }
    rows = std::move(combined);
  }
  return rows;
}

bool PatternSubtreeYieldsNothing(const Pattern& p, PatternNodeId pn,
                                 const Document& doc, NodeIndex dn) {
  // The subtree yields a row iff every non-optional, non-nested child has a
  // candidate yielding a row (nested children always contribute a group,
  // optional children pad). So pn bound to dn yields nothing iff some
  // mandatory child has only barren candidates.
  for (PatternNodeId m : p.node(pn).children) {
    const Pattern::Node& child = p.node(m);
    if (child.optional || child.nested) continue;
    bool any = false;
    for (NodeIndex cand : PatternCandidates(p, m, doc, dn)) {
      if (!PatternSubtreeYieldsNothing(p, m, doc, cand)) {
        any = true;
        break;
      }
    }
    if (!any) return true;
  }
  return false;
}

Schema ViewSchema(const Pattern& pattern, const std::string& view_name) {
  return SubtreeSchema(pattern, pattern.root(), view_name);
}

Schema ViewSubtreeSchema(const Pattern& pattern, PatternNodeId n,
                         const std::string& view_name) {
  return SubtreeSchema(pattern, n, view_name);
}

Table MaterializeView(const Pattern& pattern, const std::string& view_name,
                      const Document& doc) {
  Schema schema = SubtreeSchema(pattern, pattern.root(), view_name);
  Table out(schema);
  if (doc.size() > 0 &&
      PatternNodeMatches(pattern, pattern.root(), doc, doc.root())) {
    for (Tuple& row : MaterializeSubtreeRows(pattern, pattern.root(),
                                             view_name, doc, doc.root())) {
      out.AddRow(std::move(row));
    }
  }
  out.Deduplicate();
  return out;
}

std::vector<MaterializedView> MaterializeAll(const std::vector<ViewDef>& defs,
                                             const Document& doc) {
  std::vector<MaterializedView> out;
  out.reserve(defs.size());
  for (const ViewDef& def : defs) {
    out.push_back(
        {def, MaterializeView(def.pattern, def.name, doc)});
  }
  return out;
}

}  // namespace svx
