// Materialized XML views (the XAMs of [3,4]): a view is defined by an
// extended tree pattern (§4.4) and its extent is the nested, null-padded
// table obtained by evaluating the pattern over a document (§1, Figures 11
// and 12).
//
// Extent layout: one column per attribute of each return node, in pattern
// preorder ("<view>.n<node>.<attr>"), except that the columns of a subtree
// hanging under a nested edge are grouped into a single nested-table column
// "<view>.n<node>.g" (Figure 12: attributes V3, C3 nest under A3).
#ifndef SVX_REWRITING_VIEW_H_
#define SVX_REWRITING_VIEW_H_

#include <memory>
#include <string>
#include <vector>

#include "src/algebra/relation.h"
#include "src/pattern/pattern.h"
#include "src/util/status.h"
#include "src/xml/document.h"

namespace svx {

/// A view definition: a name and an extended tree pattern.
struct ViewDef {
  std::string name;
  Pattern pattern;
};

/// The extent schema of a view pattern (see layout above).
Schema ViewSchema(const Pattern& pattern, const std::string& view_name);

/// Evaluates `pattern` over `doc`, producing the extent. IDs are ORDPATHs,
/// labels/values strings, content columns references into `doc`.
Table MaterializeView(const Pattern& pattern, const std::string& view_name,
                      const Document& doc);

/// A named view together with its materialized extent.
struct MaterializedView {
  ViewDef def;
  Table extent;
};

/// Materializes every definition over `doc`.
std::vector<MaterializedView> MaterializeAll(const std::vector<ViewDef>& defs,
                                             const Document& doc);

}  // namespace svx

#endif  // SVX_REWRITING_VIEW_H_
