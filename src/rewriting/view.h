// Materialized XML views (the XAMs of [3,4]): a view is defined by an
// extended tree pattern (§4.4) and its extent is the nested, null-padded
// table obtained by evaluating the pattern over a document (§1, Figures 11
// and 12).
//
// Extent layout: one column per attribute of each return node, in pattern
// preorder ("<view>.n<node>.<attr>"), except that the columns of a subtree
// hanging under a nested edge are grouped into a single nested-table column
// "<view>.n<node>.g" (Figure 12: attributes V3, C3 nest under A3).
#ifndef SVX_REWRITING_VIEW_H_
#define SVX_REWRITING_VIEW_H_

#include <memory>
#include <string>
#include <vector>

#include "src/algebra/relation.h"
#include "src/pattern/pattern.h"
#include "src/util/status.h"
#include "src/xml/document.h"

namespace svx {

/// A view definition: a name and an extended tree pattern.
struct ViewDef {
  std::string name;
  Pattern pattern;
};

/// The extent schema of a view pattern (see layout above).
Schema ViewSchema(const Pattern& pattern, const std::string& view_name);

/// The schema of the pattern subtree rooted at `n` (ViewSchema is the root
/// case; a nested column's inner schema is its nested child's subtree).
Schema ViewSubtreeSchema(const Pattern& pattern, PatternNodeId n,
                         const std::string& view_name);

// ---- Pattern-subtree evaluation primitives ----
// The building blocks of MaterializeView, exposed so incremental view
// maintenance (src/maintenance/) can re-run exactly the same semantics
// against a restricted document region.

/// True iff document node `dn` satisfies `pn`'s label and value predicate.
bool PatternNodeMatches(const Pattern& p, PatternNodeId pn,
                        const Document& doc, NodeIndex dn);

/// Matching candidate bindings of `pn` under its parent's binding `dn`
/// (child or descendant axis from `pn`'s incoming edge), in document order.
std::vector<NodeIndex> PatternCandidates(const Pattern& p, PatternNodeId pn,
                                         const Document& doc, NodeIndex dn);

/// The attribute cells of `pn` bound to `dn`, in schema order.
Tuple PatternOwnValues(const Pattern& p, PatternNodeId pn,
                       const Document& doc, NodeIndex dn);

/// Column count of the pattern subtree at `n` at its own nesting level
/// (nested children count as one column).
int32_t PatternSubtreeWidth(const Pattern& p, PatternNodeId n);

/// Rows of the pattern subtree rooted at `pn` given `pn` bound to `dn` (the
/// §4.3–§4.5 semantics: ⊥-padding, nested grouping, cartesian combination).
/// Requires PatternNodeMatches(p, pn, doc, dn). Nested-table cells are
/// deduplicated and canonically sorted.
std::vector<Tuple> MaterializeSubtreeRows(const Pattern& p, PatternNodeId pn,
                                          const std::string& view_name,
                                          const Document& doc, NodeIndex dn);

/// True iff the subtree pattern at `pn` yields no rows under `dn`'s binding,
/// i.e. no candidate produces any row (the ⊥-padding condition of §4.3).
/// Cheaper than MaterializeSubtreeRows: stops at the first derivation.
bool PatternSubtreeYieldsNothing(const Pattern& p, PatternNodeId pn,
                                 const Document& doc, NodeIndex dn);

/// Evaluates `pattern` over `doc`, producing the extent. IDs are ORDPATHs,
/// labels/values strings, content columns references into `doc`.
Table MaterializeView(const Pattern& pattern, const std::string& view_name,
                      const Document& doc);

/// A named view together with its materialized extent.
struct MaterializedView {
  ViewDef def;
  Table extent;
};

/// Materializes every definition over `doc`.
std::vector<MaterializedView> MaterializeAll(const std::vector<ViewDef>& defs,
                                             const Document& doc);

}  // namespace svx

#endif  // SVX_REWRITING_VIEW_H_
