// Precomputed per-view path signatures for fast candidate pruning.
//
// The rewriter's per-query setup used to recompute the associated paths of
// every registered view (Prop 3.4 pruning) and then discover — deep inside
// the join enumeration — that most view combinations cannot possibly serve
// the query's return columns. The ViewIndex moves that work to view
// registration time: per view it precomputes, as bitsets over the summary,
//
//   * `related`      — the associated paths of the view's non-root nodes
//                      (the Prop 3.4 relevance test becomes one bitset
//                      intersection against the query's relevance closure);
//   * `attr_paths[a]`— the paths on which the view can expose attribute `a`
//                      through a *skeleton* (path-pinned) column, including
//                      §4.6 virtual parent IDs within the configured
//                      navfID depth;
//   * `anypath_attrs`— attributes carried by nodes under optional/nested
//                      edges, whose bindings are fragment (non-pinned)
//                      columns and therefore serve a query column with no
//                      path-compatibility requirement;
//   * `content_label_ids` / `content_desc` — labels and paths reachable by
//                      §4.6 content unfolding below a stored C attribute.
//
// All sets are over-approximations of what ExpandView can produce, which is
// the safe direction for pruning: a view (or view combination) is skipped
// only when even the over-approximation cannot serve a required query
// column, so skipping provably removes no rewriting.
#ifndef SVX_REWRITING_VIEW_INDEX_H_
#define SVX_REWRITING_VIEW_INDEX_H_

#include <cstdint>
#include <vector>

#include "src/pattern/pattern.h"
#include "src/rewriting/annotated_pattern.h"
#include "src/rewriting/view.h"
#include "src/summary/summary.h"

namespace svx {

/// A fixed-width bitset over summary paths (word-packed vector<bool>
/// replacement with cheap intersection tests).
using PathBitset = std::vector<uint64_t>;

inline PathBitset MakePathBitset(int32_t num_paths) {
  return PathBitset(static_cast<size_t>(num_paths + 63) / 64, 0);
}
inline void PathBitsetSet(PathBitset* b, PathId s) {
  (*b)[static_cast<size_t>(s) / 64] |= uint64_t{1} << (s % 64);
}
inline bool PathBitsetTest(const PathBitset& b, PathId s) {
  return (b[static_cast<size_t>(s) / 64] >> (s % 64)) & 1;
}
inline bool PathBitsetsIntersect(const PathBitset& a, const PathBitset& b) {
  size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}
inline bool PathBitsetEmpty(const PathBitset& b) {
  for (uint64_t w : b) {
    if (w != 0) return false;
  }
  return true;
}

/// Precomputed signature of one registered view (see file comment).
struct ViewSignature {
  PathBitset related;
  PathBitset attr_paths[4];  // indexed by attr bit position (id, l, v, c)
  PathBitset content_desc;
  std::vector<int32_t> content_label_ids;  // sorted label ids under C nodes
  uint8_t anypath_attrs = 0;
  bool has_content = false;
};

/// Index over the views registered with one Rewriter. Signatures depend on
/// the expansion options (virtual-ID depth, content unfolding), so the index
/// is built against a fixed `ExpansionOptions`.
class ViewIndex {
 public:
  ViewIndex(const Summary& summary, const ExpansionOptions& expansion);

  /// Computes and stores the signature of `def` (call in registration
  /// order; signatures are addressed by that order).
  void AddView(const ViewDef& def);

  int32_t size() const { return static_cast<int32_t>(signatures_.size()); }

  /// Prop 3.4: equivalent to ViewRelated() — some non-root view node has an
  /// associated path inside the query's relevance closure.
  bool Related(size_t i, const PathBitset& query_related) const {
    return PathBitsetsIntersect(signatures_[i].related, query_related);
  }

  /// True when view `i` might expose a column satisfying `need_attrs` for a
  /// query column whose node is `qnode` and whose feasible paths are
  /// `col_paths` (as a bitset). Over-approximate: a false return proves the
  /// view can never serve the column.
  bool CanServe(size_t i, uint8_t need_attrs, const PathBitset& col_paths,
                const Pattern::Node& qnode) const;

 private:
  const Summary& summary_;
  ExpansionOptions expansion_;
  std::vector<ViewSignature> signatures_;
};

}  // namespace svx

#endif  // SVX_REWRITING_VIEW_INDEX_H_
