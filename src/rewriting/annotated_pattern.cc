#include "src/rewriting/annotated_pattern.h"

#include <algorithm>
#include <unordered_set>

#include "src/pattern/embedding.h"
#include "src/pattern/pattern_printer.h"
#include "src/util/strings.h"

namespace svx {

const ColumnBinding* Piece::Find(const std::string& prefix,
                                 uint8_t attr) const {
  for (const ColumnBinding& b : bindings) {
    if (b.attr == attr && b.prefix == prefix) return &b;
  }
  return nullptr;
}

std::vector<const ColumnBinding*> Piece::FindPrefix(
    const std::string& prefix) const {
  std::vector<const ColumnBinding*> out;
  for (const ColumnBinding& b : bindings) {
    if (b.prefix == prefix) out.push_back(&b);
  }
  return out;
}

std::string Piece::CanonicalString() const {
  std::string out = PatternToString(pattern);
  std::vector<std::string> roles;
  roles.reserve(bindings.size());
  for (const ColumnBinding& b : bindings) {
    std::string role;
    role.reserve(b.prefix.size() + 8);
    role += std::to_string(b.node);
    role += ':';
    role += std::to_string(b.attr);
    role += ':';
    role += b.prefix;
    roles.push_back(std::move(role));
  }
  std::sort(roles.begin(), roles.end());
  out += '|';
  out += Join(roles, ";");
  return out;
}

std::vector<std::string> Candidate::JoinablePrefixes() const {
  if (pieces.empty()) return {};
  std::vector<std::string> out;
  for (const ColumnBinding& b : pieces[0].bindings) {
    if (b.attr != kAttrId || !b.skeleton) continue;
    bool in_all = true;
    for (size_t i = 1; i < pieces.size() && in_all; ++i) {
      const ColumnBinding* other = pieces[i].Find(b.prefix, kAttrId);
      in_all = other != nullptr && other->skeleton;
    }
    if (in_all) out.push_back(b.prefix);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

const std::string& Candidate::CanonicalString() const {
  if (canonical_.empty()) {
    std::vector<std::string> parts;
    parts.reserve(pieces.size());
    for (const Piece& p : pieces) parts.push_back(p.CanonicalString());
    std::sort(parts.begin(), parts.end());
    canonical_ = Join(parts, "\n");
  }
  return canonical_;
}

Candidate Candidate::CloneShallowPlan() const {
  Candidate out;
  out.plan = plan->Clone();
  out.pieces = pieces;
  out.used_views = used_views;
  out.canonical_ = canonical_;
  return out;
}

namespace {

/// True if the subtree rooted at `n` carries no attribute anywhere.
bool SubtreeAttrLess(const Pattern& p, PatternNodeId n) {
  for (PatternNodeId m : p.SubtreeNodes(n)) {
    if (p.node(m).attrs != 0) return false;
  }
  return true;
}

}  // namespace

Pattern PruneAttrlessSubtrees(const Pattern& p,
                              std::vector<PatternNodeId>* old_to_new) {
  std::vector<PatternNodeId> roots;
  for (PatternNodeId n = 1; n < p.size(); ++n) {
    const Pattern::Node& node = p.node(n);
    if ((node.optional || node.nested) && SubtreeAttrLess(p, n)) {
      roots.push_back(n);
    }
  }
  return p.EraseSubtrees(roots, old_to_new);
}

namespace {

/// Attribute letter for column naming.
const char* AttrLetter(uint8_t attr) {
  switch (attr) {
    case kAttrId:
      return "id";
    case kAttrLabel:
      return "l";
    case kAttrValue:
      return "v";
    case kAttrContent:
      return "c";
  }
  return "?";
}

/// A strengthenable optional edge: the subtree reaches, through required
/// edges, a node with an id/label/content attribute whose column is ⊥ iff
/// the subtree did not match (a V column may be ⊥ for valueless nodes, so
/// it cannot serve as the match witness).
bool FindStrengthenWitness(const Pattern& p, PatternNodeId subtree_root,
                           PatternNodeId* witness, uint8_t* attr) {
  std::vector<PatternNodeId> stack{subtree_root};
  while (!stack.empty()) {
    PatternNodeId n = stack.back();
    stack.pop_back();
    uint8_t a = p.node(n).attrs;
    if (a & kAttrId) {
      *witness = n;
      *attr = kAttrId;
      return true;
    }
    if (a & kAttrContent) {
      *witness = n;
      *attr = kAttrContent;
      return true;
    }
    if (a & kAttrLabel) {
      *witness = n;
      *attr = kAttrLabel;
      return true;
    }
    for (PatternNodeId c : p.node(n).children) {
      if (!p.node(c).optional) stack.push_back(c);
    }
  }
  return false;
}

/// Builder for one piece.
class PieceBuilder {
 public:
  PieceBuilder(const Pattern& variant, const Summary& summary,
               const std::string& view_name,
               const std::vector<PatternNodeId>& orig_ids)
      : variant_(variant),
        summary_(summary),
        view_name_(view_name),
        orig_ids_(orig_ids) {}

  /// `skeleton_of_variant` maps variant node -> skeleton node (or -1), and
  /// `embedding` maps skeleton nodes to paths.
  Piece Build(const std::vector<PatternNodeId>& variant_to_skeleton,
              const SummaryEmbedding& embedding) {
    Piece piece;
    std::vector<PatternNodeId> variant_to_piece(
        static_cast<size_t>(variant_.size()), -1);

    // Walk the variant in id order (parents first).
    for (PatternNodeId n = 0; n < variant_.size(); ++n) {
      const Pattern::Node& node = variant_.node(n);
      PatternNodeId sk = variant_to_skeleton[static_cast<size_t>(n)];
      PatternNodeId piece_id;
      if (n == variant_.root()) {
        SVX_CHECK(sk >= 0);
        piece_id = piece.pattern.SetRoot(
            summary_.label(embedding[static_cast<size_t>(sk)]), node.attrs,
            node.pred);
        node_paths_.push_back(embedding[static_cast<size_t>(sk)]);
      } else if (sk >= 0) {
        // Skeleton node: pin to its path and materialize the chain from the
        // parent (also a skeleton node by construction).
        PatternNodeId parent_sk =
            variant_to_skeleton[static_cast<size_t>(node.parent)];
        SVX_CHECK(parent_sk >= 0);
        PathId from = embedding[static_cast<size_t>(parent_sk)];
        PathId to = embedding[static_cast<size_t>(sk)];
        std::vector<PathId> chain = summary_.Chain(from, to);
        PatternNodeId attach =
            variant_to_piece[static_cast<size_t>(node.parent)];
        for (size_t i = 1; i + 1 < chain.size(); ++i) {
          attach = piece.pattern.AddChild(attach, summary_.label(chain[i]),
                                          Axis::kChild);
          node_paths_.push_back(chain[i]);
        }
        piece_id = piece.pattern.AddChild(attach, summary_.label(to),
                                          Axis::kChild, node.attrs, node.pred,
                                          /*optional=*/false,
                                          /*nested=*/false);
        node_paths_.push_back(to);
      } else {
        // Fragment node: copied verbatim under its (piece) parent.
        PatternNodeId attach =
            variant_to_piece[static_cast<size_t>(node.parent)];
        SVX_CHECK(attach >= 0);
        piece_id = piece.pattern.AddChild(attach, node.label, node.axis,
                                          node.attrs, node.pred, node.optional,
                                          /*nested=*/false);
        node_paths_.push_back(kInvalidPath);
      }
      variant_to_piece[static_cast<size_t>(n)] = piece_id;

      // Column bindings for this node's attributes.
      for (uint8_t attr : {kAttrId, kAttrLabel, kAttrValue, kAttrContent}) {
        if ((node.attrs & attr) == 0) continue;
        std::string prefix = StrFormat(
            "%s.n%d", view_name_.c_str(), orig_ids_[static_cast<size_t>(n)]);
        ColumnBinding b;
        b.node = piece_id;
        b.attr = attr;
        b.prefix = prefix;
        b.column = prefix + "." + AttrLetter(attr);
        b.skeleton = sk >= 0;
        b.path = sk >= 0 ? embedding[static_cast<size_t>(sk)] : kInvalidPath;
        piece.bindings.push_back(std::move(b));
      }
    }
    piece.node_paths = std::move(node_paths_);
    return piece;
  }

 private:
  const Pattern& variant_;
  const Summary& summary_;
  const std::string& view_name_;
  const std::vector<PatternNodeId>& orig_ids_;
  std::vector<PathId> node_paths_;
};

}  // namespace

Result<std::vector<Candidate>> ExpandView(
    const ViewDef& view, const Summary& summary,
    const std::vector<std::string>& relevant_labels,
    const ExpansionOptions& options) {
  std::vector<Candidate> out;

  // ---- Normalize: prune attribute-less optional/nested subtrees. ----
  std::vector<PatternNodeId> orig_of_pruned;
  Pattern pruned = PruneAttrlessSubtrees(view.pattern, &orig_of_pruned);
  // orig_of_pruned maps original -> pruned; invert.
  std::vector<PatternNodeId> pruned_to_orig(
      static_cast<size_t>(pruned.size()), -1);
  for (size_t i = 0; i < orig_of_pruned.size(); ++i) {
    if (orig_of_pruned[i] >= 0) {
      pruned_to_orig[static_cast<size_t>(orig_of_pruned[i])] =
          static_cast<PatternNodeId>(i);
    }
  }
  if (pruned.size() == 0) return out;

  // ---- Base plan: scan + outer-unnest of every nested group column. ----
  Schema scan_schema = ViewSchema(view.pattern, view.name);
  auto base_plan_factory = [&]() -> PlanPtr {
    PlanPtr plan = MakeViewScan(view.name, scan_schema);
    // Repeatedly flatten nested columns (outer unnest keeps ⊥ groups as ⊥
    // rows, matching the optional edge the flattening leaves behind).
    bool changed = true;
    while (changed) {
      changed = false;
      for (int32_t i = 0; i < plan->schema.size(); ++i) {
        const ColumnSpec& c = plan->schema.column(i);
        if (c.kind == ColumnKind::kNested && c.nested->size() > 0) {
          plan = MakeOuterUnnest(std::move(plan), i);
          changed = true;
          break;
        }
      }
    }
    return plan;
  };

  // Flatten the pattern: nested edges become optional (outer-unnest
  // semantics: groups with no binding surface as ⊥ rows).
  Pattern flattened = pruned;
  for (PatternNodeId n = 1; n < flattened.size(); ++n) {
    Pattern::Node& node = flattened.mutable_node(n);
    if (node.nested) {
      node.nested = false;
      node.optional = true;
    }
  }

  // ---- Variants: subsets of strengthenable optional edges. ----
  struct Strengthenable {
    PatternNodeId edge_node;
    PatternNodeId witness;
    uint8_t witness_attr;
  };
  std::vector<Strengthenable> strengthenable;
  for (PatternNodeId n = 1; n < flattened.size(); ++n) {
    if (!flattened.node(n).optional) continue;
    PatternNodeId w;
    uint8_t a;
    if (FindStrengthenWitness(flattened, n, &w, &a)) {
      strengthenable.push_back({n, w, a});
      if (static_cast<int32_t>(strengthenable.size()) >=
          options.max_strengthen_edges) {
        break;
      }
    }
  }

  size_t num_variants = static_cast<size_t>(1) << strengthenable.size();
  std::unordered_set<std::string> variant_keys;
  for (size_t mask = 0; mask < num_variants; ++mask) {
    Pattern variant = flattened;
    PlanPtr plan = base_plan_factory();
    for (size_t i = 0; i < strengthenable.size(); ++i) {
      if ((mask & (static_cast<size_t>(1) << i)) == 0) continue;
      const Strengthenable& st = strengthenable[i];
      // σ witness != ⊥ keeps exactly the rows where the whole path from the
      // root to the witness matched: every optional edge on that path (not
      // just st.edge_node's) becomes required in the variant pattern.
      for (PatternNodeId cur = st.witness; cur > 0;
           cur = variant.node(cur).parent) {
        variant.mutable_node(cur).optional = false;
      }
      std::string col = StrFormat(
          "%s.n%d.%s", view.name.c_str(),
          pruned_to_orig[static_cast<size_t>(st.witness)],
          AttrLetter(st.witness_attr));
      int32_t idx = plan->schema.Find(col);
      SVX_CHECK_MSG(idx >= 0, col.c_str());
      plan = MakeSelectNonNull(std::move(plan), idx);
    }
    // Different masks may collapse to the same variant (a deep witness
    // already strengthens the shallower edges): keep one.
    {
      std::string key;
      for (PatternNodeId n = 1; n < variant.size(); ++n) {
        key += variant.node(n).optional ? '?' : '.';
      }
      if (!variant_keys.insert(key).second) continue;
    }

    // Skeleton: variant minus (still-)optional subtrees.
    std::vector<PatternNodeId> optional_roots;
    for (PatternNodeId n = 1; n < variant.size(); ++n) {
      if (variant.node(n).optional) optional_roots.push_back(n);
    }
    std::vector<PatternNodeId> variant_to_skeleton;
    Pattern skeleton = variant.EraseSubtrees(optional_roots,
                                             &variant_to_skeleton);

    // Enumerate skeleton embeddings.
    std::vector<SummaryEmbedding> embeddings;
    Status st = EnumerateEmbeddings(
        skeleton, summary, options.max_embeddings,
        [&](const SummaryEmbedding& e) {
          embeddings.push_back(e);
          return embeddings.size() <= options.max_pieces;
        });
    if (!st.ok()) return st;
    if (embeddings.empty()) continue;                     // unsatisfiable
    if (embeddings.size() > options.max_pieces) continue;  // too wide

    Candidate cand;
    cand.used_views.push_back(view.name);
    std::vector<PatternNodeId> orig_ids(static_cast<size_t>(variant.size()),
                                        -1);
    for (PatternNodeId n = 0; n < variant.size(); ++n) {
      orig_ids[static_cast<size_t>(n)] =
          pruned_to_orig[static_cast<size_t>(n)];
    }
    for (const SummaryEmbedding& e : embeddings) {
      PieceBuilder builder(variant, summary, view.name, orig_ids);
      cand.pieces.push_back(builder.Build(variant_to_skeleton, e));
    }

    // ---- §4.6: unfold C attributes toward relevant labels. ----
    if (options.unfold_content) {
      // Collect (prefix, label) pairs where some piece has a descendant path
      // with that label below the C node.
      struct Unfold {
        std::string prefix;
        std::string label;
      };
      std::vector<Unfold> unfolds;
      if (!cand.pieces.empty()) {
        for (const ColumnBinding& b : cand.pieces[0].bindings) {
          if (b.attr != kAttrContent || !b.skeleton) continue;
          for (const std::string& label : relevant_labels) {
            bool any = false;
            for (const Piece& piece : cand.pieces) {
              const ColumnBinding* cb = piece.Find(b.prefix, kAttrContent);
              if (cb == nullptr || !cb->skeleton) continue;
              for (PathId d : summary.Descendants(cb->path)) {
                if (summary.label(d) == label) {
                  any = true;
                  break;
                }
              }
              if (any) break;
            }
            if (any) unfolds.push_back({b.prefix, label});
          }
        }
      }
      for (const Unfold& u : unfolds) {
        std::string name = u.prefix + "@" + u.label;
        int32_t src = plan->schema.Find(u.prefix + ".c");
        SVX_CHECK(src >= 0);
        plan = MakeNavigate(std::move(plan), src,
                            {{Axis::kDescendant, u.label}},
                            kAttrValue | kAttrContent, name);
        for (Piece& piece : cand.pieces) {
          const ColumnBinding* cb = piece.Find(u.prefix, kAttrContent);
          SVX_CHECK(cb != nullptr);
          PatternNodeId un = piece.pattern.AddChild(
              cb->node, u.label, Axis::kDescendant, kAttrValue | kAttrContent,
              Predicate::True(), /*optional=*/true, /*nested=*/false);
          piece.node_paths.push_back(kInvalidPath);
          piece.bindings.push_back({un, kAttrValue, name, name + ".v", -1,
                                    /*skeleton=*/false, kInvalidPath});
          piece.bindings.push_back({un, kAttrContent, name, name + ".c", -1,
                                    /*skeleton=*/false, kInvalidPath});
        }
      }
    }

    // ---- §4.6: virtual parent IDs (navfID). ----
    if (options.add_virtual_ids && !cand.pieces.empty()) {
      // For every skeleton ID prefix, derive ancestors up to
      // max_virtual_depth steps; a piece participates when its chain is deep
      // enough (otherwise the prefix is simply absent from that piece).
      std::vector<std::string> id_prefixes;
      for (const ColumnBinding& b : cand.pieces[0].bindings) {
        if (b.attr == kAttrId && b.skeleton) id_prefixes.push_back(b.prefix);
      }
      for (const std::string& prefix : id_prefixes) {
        for (int32_t steps = 1; steps <= options.max_virtual_depth; ++steps) {
          // Some piece must have the chain node, and the derived node must
          // not collide with an existing id binding role.
          bool any = false;
          for (Piece& piece : cand.pieces) {
            const ColumnBinding* b = piece.Find(prefix, kAttrId);
            if (b == nullptr) continue;
            PatternNodeId u = b->node;
            for (int32_t s = 0; s < steps && u >= 0; ++s) {
              u = piece.pattern.node(u).parent;
            }
            if (u >= 0) any = true;
          }
          if (!any) break;
          std::string name = StrFormat("%s.up%d", prefix.c_str(), steps);
          int32_t src = plan->schema.Find(prefix + ".id");
          SVX_CHECK_MSG(src >= 0, prefix.c_str());
          plan = MakeDeriveParent(std::move(plan), src, steps, name + ".id");
          for (Piece& piece : cand.pieces) {
            const ColumnBinding* b = piece.Find(prefix, kAttrId);
            if (b == nullptr) continue;
            PatternNodeId u = b->node;
            for (int32_t s = 0; s < steps && u >= 0; ++s) {
              u = piece.pattern.node(u).parent;
            }
            if (u < 0) continue;
            piece.bindings.push_back(
                {u, kAttrId, name, name + ".id", -1, /*skeleton=*/true,
                 piece.node_paths[static_cast<size_t>(u)]});
          }
        }
      }
    }

    // Resolve binding columns against the final plan schema (indexes are
    // what joins shift; names are unique within one candidate).
    for (Piece& piece : cand.pieces) {
      for (ColumnBinding& b : piece.bindings) {
        b.col = plan->schema.Find(b.column);
        SVX_CHECK_MSG(b.col >= 0, b.column.c_str());
      }
    }
    cand.plan = std::move(plan);
    out.push_back(std::move(cand));
  }
  return out;
}

}  // namespace svx
