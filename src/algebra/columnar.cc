#include "src/algebra/columnar.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "src/util/check.h"
#include "src/util/strings.h"

namespace svx {

namespace {

// ---------------------------------------------------------------------------
// Varint + raw-cell byte primitives. The raw-cell layout mirrors the v1
// row-major cell encoding (extent_io.cc) so type-mixed columns keep exactly
// the old fidelity; everything else uses LEB128 varints.
// ---------------------------------------------------------------------------

enum CellTag : uint8_t {
  kCellNull = 0,
  kCellString = 1,
  kCellId = 2,
  kCellContent = 3,
  kCellNested = 4,
};

void PutVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

int64_t VarintSize(uint64_t v) {
  int64_t n = 1;
  while (v >= 0x80) {
    ++n;
    v >>= 7;
  }
  return n;
}

/// Bounds-checked reader over serialized chunk payloads.
class ByteReader {
 public:
  ByteReader(std::string_view bytes, size_t pos) : bytes_(bytes), pos_(pos) {}

  bool GetVarint(uint64_t* v) {
    *v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= bytes_.size() || shift > 63) return false;
      uint8_t b = static_cast<uint8_t>(bytes_[pos_++]);
      *v |= static_cast<uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return true;
      shift += 7;
    }
  }
  bool GetU8(uint8_t* v) {
    if (pos_ >= bytes_.size()) return false;
    *v = static_cast<uint8_t>(bytes_[pos_++]);
    return true;
  }
  bool GetBytes(size_t n, std::string* out) {
    if (n > Remaining()) return false;
    out->assign(bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  size_t pos() const { return pos_; }
  size_t Remaining() const { return bytes_.size() - pos_; }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

Status Truncated(const ByteReader& r) {
  return Status::ParseError(
      StrFormat("truncated columnar extent at offset %zu", r.pos()));
}

// Raw cells use the v1 fixed-width framing (u32 lengths / components, u64
// nested row counts) so the fallback stays byte-compatible in spirit with
// the row-major format it replaces.
void PutU32Raw(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64Raw(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutOrdPathRaw(const OrdPath& id, std::string* out) {
  PutU32Raw(static_cast<uint32_t>(id.components().size()), out);
  for (int32_t c : id.components()) {
    PutU32Raw(static_cast<uint32_t>(c), out);
  }
}

void PutRawCell(const Value& v, std::string* out) {
  if (v.IsNull()) {
    out->push_back(static_cast<char>(kCellNull));
  } else if (v.IsString()) {
    out->push_back(static_cast<char>(kCellString));
    PutU32Raw(static_cast<uint32_t>(v.AsString().size()), out);
    out->append(v.AsString());
  } else if (v.IsId()) {
    out->push_back(static_cast<char>(kCellId));
    PutOrdPathRaw(v.AsId(), out);
  } else if (v.IsContent()) {
    const NodeRef& ref = v.AsContent();
    SVX_CHECK(ref.doc != nullptr && ref.node != kInvalidNode);
    out->push_back(static_cast<char>(kCellContent));
    PutOrdPathRaw(ref.doc->ord_path(ref.node), out);
  } else {
    const Table& nested = v.AsTable();
    out->push_back(static_cast<char>(kCellNested));
    PutU64Raw(static_cast<uint64_t>(nested.NumRows()), out);
    for (const Tuple& row : nested.rows()) {
      for (const Value& cell : row) PutRawCell(cell, out);
    }
  }
}

class RawCellReader {
 public:
  explicit RawCellReader(std::string_view bytes) : bytes_(bytes) {}

  bool GetU8(uint8_t* v) {
    if (pos_ >= bytes_.size()) return false;
    *v = static_cast<uint8_t>(bytes_[pos_++]);
    return true;
  }
  bool GetU32(uint32_t* v) {
    if (pos_ + 4 > bytes_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool GetU64(uint64_t* v) {
    if (pos_ + 8 > bytes_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }
  bool GetString(std::string* s) {
    uint32_t len = 0;
    if (!GetU32(&len) || pos_ + len > bytes_.size()) return false;
    s->assign(bytes_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  bool GetOrdPath(OrdPath* id) {
    uint32_t n = 0;
    if (!GetU32(&n) || n > 1u << 20 || pos_ + 4ull * n > bytes_.size()) {
      return false;
    }
    std::vector<int32_t> comps;
    comps.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      uint32_t c = 0;
      if (!GetU32(&c)) return false;
      comps.push_back(static_cast<int32_t>(c));
    }
    *id = OrdPath(std::move(comps));
    return true;
  }
  size_t pos() const { return pos_; }
  size_t Remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

Status RawTruncated(const RawCellReader& r) {
  return Status::ParseError(
      StrFormat("truncated raw column chunk at offset %zu", r.pos()));
}

Result<Value> GetRawCell(RawCellReader* r, const ColumnSpec& col,
                         const Document* doc, int depth) {
  if (depth > 16) return Status::ParseError("raw cell nesting too deep");
  uint8_t tag = 0;
  if (!r->GetU8(&tag)) return RawTruncated(*r);
  switch (tag) {
    case kCellNull:
      return Value();
    case kCellString: {
      std::string s;
      if (!r->GetString(&s)) return RawTruncated(*r);
      return Value(std::move(s));
    }
    case kCellId: {
      OrdPath id;
      if (!r->GetOrdPath(&id)) return RawTruncated(*r);
      return Value(std::move(id));
    }
    case kCellContent: {
      OrdPath id;
      if (!r->GetOrdPath(&id)) return RawTruncated(*r);
      if (doc == nullptr) {
        return Status::InvalidArgument(
            "extent has content references but no document was supplied");
      }
      NodeIndex node = doc->FindByOrdPath(id);
      if (node == kInvalidNode) {
        return Status::NotFound(
            "content reference " + id.ToString() + " not in the document");
      }
      return Value(NodeRef{doc, node});
    }
    case kCellNested: {
      if (col.nested == nullptr) {
        return Status::ParseError("nested cell in a non-nested column");
      }
      uint64_t nrows = 0;
      if (!r->GetU64(&nrows)) return RawTruncated(*r);
      const Schema& schema = *col.nested;
      if (nrows > 0 &&
          (schema.size() == 0 ||
           nrows > r->Remaining() / static_cast<uint64_t>(schema.size()))) {
        return Status::ParseError(
            StrFormat("nested row count %llu exceeds input size",
                      static_cast<unsigned long long>(nrows)));
      }
      Table table(schema);
      for (uint64_t i = 0; i < nrows; ++i) {
        Tuple row;
        row.reserve(static_cast<size_t>(schema.size()));
        for (int32_t c = 0; c < schema.size(); ++c) {
          Result<Value> v = GetRawCell(r, schema.column(c), doc, depth + 1);
          if (!v.ok()) return v.status();
          row.push_back(std::move(*v));
        }
        table.AddRow(std::move(row));
      }
      return Value(std::make_shared<const Table>(std::move(table)));
    }
    default:
      return Status::ParseError(
          StrFormat("bad raw cell tag %u", static_cast<unsigned>(tag)));
  }
}

/// Walks every content ORDPATH inside a raw cell stream without resolving
/// the references.
Status WalkRawContentIds(RawCellReader* r, const ColumnSpec& col, int depth,
                         const std::function<Status(const OrdPath&)>& fn) {
  if (depth > 16) return Status::ParseError("raw cell nesting too deep");
  uint8_t tag = 0;
  if (!r->GetU8(&tag)) return RawTruncated(*r);
  switch (tag) {
    case kCellNull:
      return Status::OK();
    case kCellString: {
      std::string s;
      if (!r->GetString(&s)) return RawTruncated(*r);
      return Status::OK();
    }
    case kCellId: {
      OrdPath id;
      if (!r->GetOrdPath(&id)) return RawTruncated(*r);
      return Status::OK();
    }
    case kCellContent: {
      OrdPath id;
      if (!r->GetOrdPath(&id)) return RawTruncated(*r);
      return fn(id);
    }
    case kCellNested: {
      if (col.nested == nullptr) {
        return Status::ParseError("nested cell in a non-nested column");
      }
      uint64_t nrows = 0;
      if (!r->GetU64(&nrows)) return RawTruncated(*r);
      const Schema& schema = *col.nested;
      if (nrows > 0 &&
          (schema.size() == 0 ||
           nrows > r->Remaining() / static_cast<uint64_t>(schema.size()))) {
        return Status::ParseError("nested row count exceeds input size");
      }
      for (uint64_t i = 0; i < nrows; ++i) {
        for (int32_t c = 0; c < schema.size(); ++c) {
          SVX_RETURN_IF_ERROR(
              WalkRawContentIds(r, schema.column(c), depth + 1, fn));
        }
      }
      return Status::OK();
    }
    default:
      return Status::ParseError("bad raw cell tag");
  }
}

// ---------------------------------------------------------------------------
// Per-column encoding.
// ---------------------------------------------------------------------------

const OrdPath& CellOrdPath(const Value& v) {
  if (v.IsId()) return v.AsId();
  const NodeRef& ref = v.AsContent();
  SVX_CHECK(ref.doc != nullptr && ref.node != kInvalidNode);
  return ref.doc->ord_path(ref.node);
}

void AppendDeltaId(const OrdPath& id, std::vector<int32_t>* prev,
                   std::string* out) {
  const std::vector<int32_t>& comps = id.components();
  size_t prefix = 0;
  size_t limit = std::min(prev->size(), comps.size());
  while (prefix < limit &&
         (*prev)[prefix] == comps[prefix]) {
    ++prefix;
  }
  PutVarint(static_cast<uint64_t>(prefix) + 1, out);
  PutVarint(static_cast<uint64_t>(comps.size() - prefix), out);
  for (size_t i = prefix; i < comps.size(); ++i) {
    PutVarint(static_cast<uint64_t>(static_cast<uint32_t>(comps[i])), out);
  }
  *prev = comps;
}

ColumnChunkPtr EncodeColumn(const Table& table, int32_t c,
                            const ColumnSpec& spec) {
  auto chunk = std::make_shared<ColumnChunk>();
  chunk->num_rows = table.NumRows();

  bool all_string = true, all_id = true, all_content = true, all_nested = true;
  for (const Tuple& row : table.rows()) {
    const Value& v = row[static_cast<size_t>(c)];
    if (v.IsNull()) continue;
    if (!v.IsString()) all_string = false;
    if (!v.IsId()) all_id = false;
    if (!v.IsContent()) all_content = false;
    if (!v.IsTable() || spec.nested == nullptr ||
        !(v.AsTable().schema() == *spec.nested)) {
      all_nested = false;
    }
  }

  if (all_string) {
    chunk->encoding = ColumnChunk::kDict;
    std::vector<std::string> values;
    for (const Tuple& row : table.rows()) {
      const Value& v = row[static_cast<size_t>(c)];
      if (!v.IsNull()) values.push_back(v.AsString());
    }
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    std::unordered_map<std::string_view, uint32_t> index;
    index.reserve(values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      index.emplace(values[i], static_cast<uint32_t>(i));
    }
    chunk->dict = std::move(values);
    chunk->codes.reserve(static_cast<size_t>(table.NumRows()));
    for (const Tuple& row : table.rows()) {
      const Value& v = row[static_cast<size_t>(c)];
      chunk->codes.push_back(v.IsNull() ? ColumnChunk::kNullCode
                                        : index.at(v.AsString()));
    }
    return chunk;
  }

  if (all_id || all_content) {
    chunk->encoding = all_id ? ColumnChunk::kIds : ColumnChunk::kContent;
    std::vector<int32_t> prev;
    for (const Tuple& row : table.rows()) {
      const Value& v = row[static_cast<size_t>(c)];
      if (v.IsNull()) {
        PutVarint(0, &chunk->id_bytes);
      } else {
        AppendDeltaId(CellOrdPath(v), &prev, &chunk->id_bytes);
      }
    }
    return chunk;
  }

  if (all_nested) {
    chunk->encoding = ColumnChunk::kNested;
    Table concat(*spec.nested);
    chunk->offsets.reserve(static_cast<size_t>(table.NumRows()) + 1);
    chunk->nulls.reserve(static_cast<size_t>(table.NumRows()));
    chunk->offsets.push_back(0);
    for (const Tuple& row : table.rows()) {
      const Value& v = row[static_cast<size_t>(c)];
      if (v.IsNull()) {
        chunk->nulls.push_back(1);
      } else {
        chunk->nulls.push_back(0);
        for (const Tuple& inner : v.AsTable().rows()) {
          concat.AddRow(inner);
        }
      }
      chunk->offsets.push_back(concat.NumRows());
    }
    chunk->child = std::make_shared<const ColumnarExtent>(
        ColumnarExtent::Encode(concat));
    return chunk;
  }

  chunk->encoding = ColumnChunk::kRaw;
  for (const Tuple& row : table.rows()) {
    PutRawCell(row[static_cast<size_t>(c)], &chunk->raw_cells);
  }
  return chunk;
}

bool ChunkHasContent(const ColumnChunk& chunk, const ColumnSpec& spec) {
  switch (chunk.encoding) {
    case ColumnChunk::kContent:
      return !chunk.id_bytes.empty();
    case ColumnChunk::kNested:
      return chunk.child != nullptr && chunk.child->has_content();
    case ColumnChunk::kRaw: {
      bool found = false;
      RawCellReader r(chunk.raw_cells);
      for (int64_t i = 0; i < chunk.num_rows && !found; ++i) {
        Status s = WalkRawContentIds(
            &r, spec, 0, [&found](const OrdPath&) {
              found = true;
              return Status::OK();
            });
        if (!s.ok()) return false;  // corrupt chunks fail later, at decode
      }
      return found;
    }
    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// Per-column decoding.
// ---------------------------------------------------------------------------

Status DecodeIdColumn(const ColumnChunk& chunk, const ColumnSpec& spec,
                      const Document* doc, std::vector<Value>* out) {
  const bool content = chunk.encoding == ColumnChunk::kContent;
  std::vector<int32_t> prev;
  ByteReader r(chunk.id_bytes, 0);
  out->reserve(static_cast<size_t>(chunk.num_rows));
  for (int64_t i = 0; i < chunk.num_rows; ++i) {
    uint64_t head = 0;
    if (!r.GetVarint(&head)) return Truncated(r);
    if (head == 0) {
      out->push_back(Value());
      continue;
    }
    uint64_t prefix = head - 1;
    uint64_t suffix = 0;
    if (!r.GetVarint(&suffix)) return Truncated(r);
    if (prefix > prev.size() || prefix + suffix > 1u << 20) {
      return Status::ParseError(
          StrFormat("bad ORDPATH delta in column %s", spec.name.c_str()));
    }
    std::vector<int32_t> comps(prev.begin(),
                               prev.begin() + static_cast<ptrdiff_t>(prefix));
    comps.reserve(static_cast<size_t>(prefix + suffix));
    for (uint64_t k = 0; k < suffix; ++k) {
      uint64_t comp = 0;
      if (!r.GetVarint(&comp)) return Truncated(r);
      comps.push_back(static_cast<int32_t>(static_cast<uint32_t>(comp)));
    }
    prev = comps;
    OrdPath id(std::move(comps));
    if (!content) {
      out->push_back(Value(std::move(id)));
      continue;
    }
    if (doc == nullptr) {
      return Status::InvalidArgument(
          "extent has content references but no document was supplied");
    }
    NodeIndex node = doc->FindByOrdPath(id);
    if (node == kInvalidNode) {
      return Status::NotFound("content reference " + id.ToString() +
                              " not in the document");
    }
    out->push_back(Value(NodeRef{doc, node}));
  }
  if (r.Remaining() != 0) {
    return Status::ParseError("trailing bytes in ORDPATH column chunk");
  }
  return Status::OK();
}

Status DecodeColumnValues(const ColumnChunk& chunk, const ColumnSpec& spec,
                          const Document* doc, std::vector<Value>* out) {
  switch (chunk.encoding) {
    case ColumnChunk::kDict: {
      if (chunk.codes.size() != static_cast<size_t>(chunk.num_rows)) {
        return Status::ParseError("dictionary code count mismatch");
      }
      out->reserve(chunk.codes.size());
      for (uint32_t code : chunk.codes) {
        if (code == ColumnChunk::kNullCode) {
          out->push_back(Value());
        } else if (code < chunk.dict.size()) {
          out->push_back(Value(chunk.dict[code]));
        } else {
          return Status::ParseError(
              StrFormat("dictionary code out of range in column %s",
                        spec.name.c_str()));
        }
      }
      return Status::OK();
    }
    case ColumnChunk::kIds:
    case ColumnChunk::kContent:
      return DecodeIdColumn(chunk, spec, doc, out);
    case ColumnChunk::kNested: {
      if (chunk.child == nullptr || spec.nested == nullptr ||
          chunk.offsets.size() != static_cast<size_t>(chunk.num_rows) + 1 ||
          chunk.nulls.size() != static_cast<size_t>(chunk.num_rows)) {
        return Status::ParseError("malformed nested column chunk");
      }
      Result<Table> child = chunk.child->Decode(doc);
      if (!child.ok()) return child.status();
      out->reserve(static_cast<size_t>(chunk.num_rows));
      for (int64_t i = 0; i < chunk.num_rows; ++i) {
        if (chunk.nulls[static_cast<size_t>(i)] != 0) {
          out->push_back(Value());
          continue;
        }
        int64_t lo = chunk.offsets[static_cast<size_t>(i)];
        int64_t hi = chunk.offsets[static_cast<size_t>(i) + 1];
        if (lo < 0 || hi < lo || hi > child->NumRows()) {
          return Status::ParseError("nested column offsets out of range");
        }
        Table group(*spec.nested);
        for (int64_t k = lo; k < hi; ++k) {
          group.AddRow(child->row(k));
        }
        out->push_back(Value(std::make_shared<const Table>(std::move(group))));
      }
      return Status::OK();
    }
    case ColumnChunk::kRaw: {
      RawCellReader r(chunk.raw_cells);
      out->reserve(static_cast<size_t>(chunk.num_rows));
      for (int64_t i = 0; i < chunk.num_rows; ++i) {
        Result<Value> v = GetRawCell(&r, spec, doc, 0);
        if (!v.ok()) return v.status();
        out->push_back(std::move(*v));
      }
      if (!r.AtEnd()) {
        return Status::ParseError("trailing bytes in raw column chunk");
      }
      return Status::OK();
    }
  }
  return Status::ParseError("bad column chunk encoding");
}

}  // namespace

bool ColumnChunk::operator==(const ColumnChunk& other) const {
  if (encoding != other.encoding || num_rows != other.num_rows) return false;
  switch (encoding) {
    case kDict:
      return dict == other.dict && codes == other.codes;
    case kIds:
    case kContent:
      return id_bytes == other.id_bytes;
    case kNested:
      if (offsets != other.offsets || nulls != other.nulls) return false;
      if (child == other.child) return true;
      return child != nullptr && other.child != nullptr &&
             *child == *other.child;
    case kRaw:
      return raw_cells == other.raw_cells;
  }
  return false;
}

ColumnarExtent ColumnarExtent::Encode(const Table& table) {
  ColumnarExtent out;
  out.schema_ = table.schema();
  out.num_rows_ = table.NumRows();
  out.columns_.reserve(static_cast<size_t>(out.schema_.size()));
  for (int32_t c = 0; c < out.schema_.size(); ++c) {
    const ColumnSpec& spec = out.schema_.column(c);
    ColumnChunkPtr chunk = EncodeColumn(table, c, spec);
    out.has_content_ = out.has_content_ || ChunkHasContent(*chunk, spec);
    out.columns_.push_back(std::move(chunk));
  }
  return out;
}

ColumnarExtent ColumnarExtent::EncodeSharing(const Table& table,
                                             const ColumnarExtent& prev) {
  ColumnarExtent out = Encode(table);
  if (!(out.schema_ == prev.schema_)) return out;
  for (size_t c = 0; c < out.columns_.size(); ++c) {
    if (c < prev.columns_.size() && prev.columns_[c] != nullptr &&
        *out.columns_[c] == *prev.columns_[c]) {
      out.columns_[c] = prev.columns_[c];
    }
  }
  return out;
}

Result<Table> ColumnarExtent::Decode(const Document* doc) const {
  std::vector<bool> all(static_cast<size_t>(schema_.size()), true);
  return DecodeColumns(all, doc);
}

Result<Table> ColumnarExtent::DecodeColumns(const std::vector<bool>& used,
                                            const Document* doc) const {
  if (used.size() != static_cast<size_t>(schema_.size())) {
    return Status::InvalidArgument("column-use mask arity mismatch");
  }
  std::vector<std::vector<Value>> cols(static_cast<size_t>(schema_.size()));
  for (int32_t c = 0; c < schema_.size(); ++c) {
    if (!used[static_cast<size_t>(c)]) continue;
    const ColumnChunkPtr& chunk = columns_[static_cast<size_t>(c)];
    if (chunk == nullptr || chunk->num_rows != num_rows_) {
      return Status::ParseError("column chunk row count mismatch");
    }
    SVX_RETURN_IF_ERROR(DecodeColumnValues(*chunk, schema_.column(c), doc,
                                           &cols[static_cast<size_t>(c)]));
  }
  Table table(schema_);
  for (int64_t i = 0; i < num_rows_; ++i) {
    Tuple row;
    row.reserve(static_cast<size_t>(schema_.size()));
    for (int32_t c = 0; c < schema_.size(); ++c) {
      if (used[static_cast<size_t>(c)]) {
        row.push_back(std::move(cols[static_cast<size_t>(c)]
                                    [static_cast<size_t>(i)]));
      } else {
        row.push_back(Value());
      }
    }
    table.AddRow(std::move(row));
  }
  return table;
}

int64_t ColumnarExtent::SerializedByteSize() const {
  int64_t size = VarintSize(static_cast<uint64_t>(num_rows_));
  for (const ColumnChunkPtr& chunk : columns_) {
    size += 1;  // encoding tag
    switch (chunk->encoding) {
      case ColumnChunk::kDict: {
        size += VarintSize(chunk->dict.size());
        for (const std::string& s : chunk->dict) {
          size += VarintSize(s.size()) + static_cast<int64_t>(s.size());
        }
        for (uint32_t code : chunk->codes) {
          size += VarintSize(code == ColumnChunk::kNullCode
                                 ? 0
                                 : static_cast<uint64_t>(code) + 1);
        }
        break;
      }
      case ColumnChunk::kIds:
      case ColumnChunk::kContent:
        size += VarintSize(chunk->id_bytes.size()) +
                static_cast<int64_t>(chunk->id_bytes.size());
        break;
      case ColumnChunk::kNested: {
        size += (chunk->num_rows + 7) / 8;  // ⊥ bitmap
        for (int64_t i = 0; i < chunk->num_rows; ++i) {
          if (chunk->nulls[static_cast<size_t>(i)] == 0) {
            size += VarintSize(static_cast<uint64_t>(
                chunk->offsets[static_cast<size_t>(i) + 1] -
                chunk->offsets[static_cast<size_t>(i)]));
          }
        }
        size += chunk->child->SerializedByteSize();
        break;
      }
      case ColumnChunk::kRaw:
        size += VarintSize(chunk->raw_cells.size()) +
                static_cast<int64_t>(chunk->raw_cells.size());
        break;
    }
  }
  return size;
}

void ColumnarExtent::AppendBytes(std::string* out) const {
  PutVarint(static_cast<uint64_t>(num_rows_), out);
  for (const ColumnChunkPtr& chunk : columns_) {
    out->push_back(static_cast<char>(chunk->encoding));
    switch (chunk->encoding) {
      case ColumnChunk::kDict: {
        PutVarint(chunk->dict.size(), out);
        for (const std::string& s : chunk->dict) {
          PutVarint(s.size(), out);
          out->append(s);
        }
        for (uint32_t code : chunk->codes) {
          PutVarint(code == ColumnChunk::kNullCode
                        ? 0
                        : static_cast<uint64_t>(code) + 1,
                    out);
        }
        break;
      }
      case ColumnChunk::kIds:
      case ColumnChunk::kContent:
        PutVarint(chunk->id_bytes.size(), out);
        out->append(chunk->id_bytes);
        break;
      case ColumnChunk::kNested: {
        std::string bitmap(static_cast<size_t>((chunk->num_rows + 7) / 8),
                           '\0');
        for (int64_t i = 0; i < chunk->num_rows; ++i) {
          if (chunk->nulls[static_cast<size_t>(i)] != 0) {
            bitmap[static_cast<size_t>(i / 8)] |=
                static_cast<char>(1 << (i % 8));
          }
        }
        out->append(bitmap);
        for (int64_t i = 0; i < chunk->num_rows; ++i) {
          if (chunk->nulls[static_cast<size_t>(i)] == 0) {
            PutVarint(static_cast<uint64_t>(
                          chunk->offsets[static_cast<size_t>(i) + 1] -
                          chunk->offsets[static_cast<size_t>(i)]),
                      out);
          }
        }
        chunk->child->AppendBytes(out);
        break;
      }
      case ColumnChunk::kRaw:
        PutVarint(chunk->raw_cells.size(), out);
        out->append(chunk->raw_cells);
        break;
    }
  }
}

Result<ColumnarExtent> ColumnarExtent::FromBytes(std::string_view bytes,
                                                 size_t* pos, Schema schema) {
  ByteReader r(bytes, *pos);
  uint64_t nrows = 0;
  if (!r.GetVarint(&nrows)) return Truncated(r);
  // Every non-empty column costs at least one byte per row downstream, so a
  // row count beyond the remaining input is corrupt, not just large.
  if (schema.size() > 0 && nrows > r.Remaining() + 1) {
    return Status::ParseError("columnar row count exceeds input size");
  }
  ColumnarExtent out;
  out.num_rows_ = static_cast<int64_t>(nrows);
  out.schema_ = std::move(schema);
  out.columns_.reserve(static_cast<size_t>(out.schema_.size()));
  for (int32_t c = 0; c < out.schema_.size(); ++c) {
    const ColumnSpec& spec = out.schema_.column(c);
    auto chunk = std::make_shared<ColumnChunk>();
    chunk->num_rows = out.num_rows_;
    uint8_t encoding = 0;
    if (!r.GetU8(&encoding)) return Truncated(r);
    if (encoding > ColumnChunk::kRaw) {
      return Status::ParseError(
          StrFormat("bad column encoding %u", static_cast<unsigned>(encoding)));
    }
    chunk->encoding = static_cast<ColumnChunk::Encoding>(encoding);
    switch (chunk->encoding) {
      case ColumnChunk::kDict: {
        uint64_t ndict = 0;
        if (!r.GetVarint(&ndict) || ndict > r.Remaining()) return Truncated(r);
        chunk->dict.reserve(static_cast<size_t>(ndict));
        for (uint64_t i = 0; i < ndict; ++i) {
          uint64_t len = 0;
          std::string s;
          if (!r.GetVarint(&len) || !r.GetBytes(static_cast<size_t>(len), &s)) {
            return Truncated(r);
          }
          chunk->dict.push_back(std::move(s));
        }
        chunk->codes.reserve(static_cast<size_t>(nrows));
        for (uint64_t i = 0; i < nrows; ++i) {
          uint64_t code = 0;
          if (!r.GetVarint(&code)) return Truncated(r);
          if (code == 0) {
            chunk->codes.push_back(ColumnChunk::kNullCode);
          } else if (code <= ndict) {
            chunk->codes.push_back(static_cast<uint32_t>(code - 1));
          } else {
            return Status::ParseError("dictionary code out of range");
          }
        }
        break;
      }
      case ColumnChunk::kIds:
      case ColumnChunk::kContent: {
        uint64_t len = 0;
        if (!r.GetVarint(&len) ||
            !r.GetBytes(static_cast<size_t>(len), &chunk->id_bytes)) {
          return Truncated(r);
        }
        break;
      }
      case ColumnChunk::kNested: {
        if (spec.nested == nullptr) {
          return Status::ParseError("nested chunk in a non-nested column");
        }
        size_t nbitmap = static_cast<size_t>((nrows + 7) / 8);
        std::string bitmap;
        if (!r.GetBytes(nbitmap, &bitmap)) return Truncated(r);
        chunk->nulls.reserve(static_cast<size_t>(nrows));
        for (uint64_t i = 0; i < nrows; ++i) {
          chunk->nulls.push_back(
              (static_cast<uint8_t>(bitmap[i / 8]) >> (i % 8)) & 1);
        }
        chunk->offsets.reserve(static_cast<size_t>(nrows) + 1);
        chunk->offsets.push_back(0);
        for (uint64_t i = 0; i < nrows; ++i) {
          int64_t group = 0;
          if (chunk->nulls[static_cast<size_t>(i)] == 0) {
            uint64_t size = 0;
            if (!r.GetVarint(&size)) return Truncated(r);
            group = static_cast<int64_t>(size);
          }
          chunk->offsets.push_back(chunk->offsets.back() + group);
        }
        size_t child_pos = r.pos();
        Result<ColumnarExtent> child =
            FromBytes(bytes, &child_pos, *spec.nested);
        if (!child.ok()) return child.status();
        if (child->num_rows() != chunk->offsets.back()) {
          return Status::ParseError("nested child row count mismatch");
        }
        chunk->child = std::make_shared<const ColumnarExtent>(
            std::move(*child));
        r = ByteReader(bytes, child_pos);
        break;
      }
      case ColumnChunk::kRaw: {
        uint64_t len = 0;
        if (!r.GetVarint(&len) ||
            !r.GetBytes(static_cast<size_t>(len), &chunk->raw_cells)) {
          return Truncated(r);
        }
        break;
      }
    }
    out.has_content_ = out.has_content_ || ChunkHasContent(*chunk, spec);
    out.columns_.push_back(std::move(chunk));
  }
  *pos = r.pos();
  return out;
}

Status ColumnarExtent::ForEachContentId(
    const std::function<Status(const OrdPath&)>& fn) const {
  for (int32_t c = 0; c < schema_.size(); ++c) {
    const ColumnChunk& chunk = *columns_[static_cast<size_t>(c)];
    const ColumnSpec& spec = schema_.column(c);
    switch (chunk.encoding) {
      case ColumnChunk::kContent: {
        std::vector<int32_t> prev;
        ByteReader r(chunk.id_bytes, 0);
        for (int64_t i = 0; i < chunk.num_rows; ++i) {
          uint64_t head = 0;
          if (!r.GetVarint(&head)) return Truncated(r);
          if (head == 0) continue;
          uint64_t prefix = head - 1;
          uint64_t suffix = 0;
          if (!r.GetVarint(&suffix)) return Truncated(r);
          if (prefix > prev.size() || prefix + suffix > 1u << 20) {
            return Status::ParseError("bad ORDPATH delta");
          }
          prev.resize(static_cast<size_t>(prefix));
          for (uint64_t k = 0; k < suffix; ++k) {
            uint64_t comp = 0;
            if (!r.GetVarint(&comp)) return Truncated(r);
            prev.push_back(static_cast<int32_t>(static_cast<uint32_t>(comp)));
          }
          SVX_RETURN_IF_ERROR(fn(OrdPath(prev)));
        }
        break;
      }
      case ColumnChunk::kNested:
        if (chunk.child != nullptr) {
          SVX_RETURN_IF_ERROR(chunk.child->ForEachContentId(fn));
        }
        break;
      case ColumnChunk::kRaw: {
        RawCellReader r(chunk.raw_cells);
        for (int64_t i = 0; i < chunk.num_rows; ++i) {
          SVX_RETURN_IF_ERROR(WalkRawContentIds(&r, spec, 0, fn));
        }
        break;
      }
      default:
        break;
    }
  }
  return Status::OK();
}

bool ColumnarExtent::operator==(const ColumnarExtent& other) const {
  if (!(schema_ == other.schema_) || num_rows_ != other.num_rows_ ||
      columns_.size() != other.columns_.size()) {
    return false;
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (columns_[c] == other.columns_[c]) continue;
    if (columns_[c] == nullptr || other.columns_[c] == nullptr ||
        !(*columns_[c] == *other.columns_[c])) {
      return false;
    }
  }
  return true;
}

}  // namespace svx
