// Nested tables: the extents of materialized views (§1: "Each view ...
// produces a nested table, which may include null values") and the values
// flowing through rewriting plans.
#ifndef SVX_ALGEBRA_RELATION_H_
#define SVX_ALGEBRA_RELATION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/algebra/value.h"

namespace svx {

/// What a column holds.
enum class ColumnKind {
  kId,       // structural identifier (OrdPath)
  kLabel,    // element label
  kValue,    // atomic value
  kContent,  // content reference
  kNested,   // nested table (§4.5)
};

const char* ColumnKindName(ColumnKind kind);

class Schema;

/// One column: a stable name ("V1.n2.id"), its kind and — for nested
/// columns — the nested schema.
struct ColumnSpec {
  std::string name;
  ColumnKind kind = ColumnKind::kValue;
  std::shared_ptr<const Schema> nested;  // only for kNested

  bool operator==(const ColumnSpec& other) const;
};

/// An ordered list of columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnSpec> columns)
      : columns_(std::move(columns)) {}

  int32_t size() const { return static_cast<int32_t>(columns_.size()); }
  const ColumnSpec& column(int32_t i) const {
    SVX_DCHECK(i >= 0 && i < size());
    return columns_[static_cast<size_t>(i)];
  }
  const std::vector<ColumnSpec>& columns() const { return columns_; }

  /// Index of the column named `name`, or -1.
  int32_t Find(const std::string& name) const;

  void Append(ColumnSpec spec) { columns_.push_back(std::move(spec)); }

  /// "name:kind, name:kind, ...".
  std::string ToString() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<ColumnSpec> columns_;
};

using Tuple = std::vector<Value>;

/// A materialized (possibly nested) relation.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  int64_t NumRows() const { return static_cast<int64_t>(rows_.size()); }
  const Tuple& row(int64_t i) const {
    SVX_DCHECK(i >= 0 && i < NumRows());
    return rows_[static_cast<size_t>(i)];
  }
  const std::vector<Tuple>& rows() const { return rows_; }

  void AddRow(Tuple row) {
    SVX_DCHECK(static_cast<int32_t>(row.size()) == schema_.size());
    rows_.push_back(std::move(row));
  }

  /// Direct row storage for in-place maintenance (delta application,
  /// content-reference rebinding). Callers must keep every row at schema
  /// arity.
  std::vector<Tuple>& mutable_rows() { return rows_; }

  /// Removes duplicate rows (set semantics), preserving first occurrences.
  void Deduplicate();

  /// Sorts rows by the given ID column in document order (nulls last).
  void SortByIdColumn(int32_t col);

  /// Sorts rows into the canonical deterministic order (CompareTuples).
  /// Assumes nested-table cells are already canonical (MaterializeView and
  /// the delta evaluator build them sorted); the view store relies on this
  /// to make equal extent row sets byte-identical under serialization.
  void SortRowsCanonical();

  /// Deep row-set equality up to row order (schemas must match).
  bool EqualsIgnoringOrder(const Table& other) const;

  /// Multi-line rendering for tests and examples.
  std::string ToString() const;

 private:
  Schema schema_;
  std::vector<Tuple> rows_;
};

/// Hash of a whole tuple (deep).
size_t TupleHash(const Tuple& t);

/// Deterministic total order over values: ⊥ < string < id < content <
/// nested; strings lexicographic, ids in document order, content by the
/// referenced node's ORDPATH, nested tables lexicographic by rows. Returns
/// <0, 0, >0. Content cells compare equal iff their ORDPATHs are equal,
/// independent of the owning Document — the order survives rebinding.
int CompareValues(const Value& a, const Value& b);

/// Lexicographic tuple comparison via CompareValues.
int CompareTuples(const Tuple& a, const Tuple& b);

}  // namespace svx

#endif  // SVX_ALGEBRA_RELATION_H_
