#include "src/algebra/relation.h"

#include <algorithm>
#include <unordered_set>

namespace svx {

const char* ColumnKindName(ColumnKind kind) {
  switch (kind) {
    case ColumnKind::kId:
      return "id";
    case ColumnKind::kLabel:
      return "l";
    case ColumnKind::kValue:
      return "v";
    case ColumnKind::kContent:
      return "c";
    case ColumnKind::kNested:
      return "nested";
  }
  return "?";
}

bool ColumnSpec::operator==(const ColumnSpec& other) const {
  if (name != other.name || kind != other.kind) return false;
  if ((nested == nullptr) != (other.nested == nullptr)) return false;
  if (nested != nullptr && !(*nested == *other.nested)) return false;
  return true;
}

int32_t Schema::Find(const std::string& name) const {
  for (int32_t i = 0; i < size(); ++i) {
    if (columns_[static_cast<size_t>(i)].name == name) return i;
  }
  return -1;
}

std::string Schema::ToString() const {
  std::string out;
  for (int32_t i = 0; i < size(); ++i) {
    if (i > 0) out += ", ";
    const ColumnSpec& c = columns_[static_cast<size_t>(i)];
    out += c.name;
    out += ':';
    out += ColumnKindName(c.kind);
    if (c.kind == ColumnKind::kNested && c.nested != nullptr) {
      out += '(' + c.nested->ToString() + ')';
    }
  }
  return out;
}

bool Schema::operator==(const Schema& other) const {
  return columns_ == other.columns_;
}

size_t TupleHash(const Tuple& t) {
  size_t h = 0x9E3779B97f4A7C15ULL;
  for (const Value& v : t) {
    h ^= v.Hash() + 0x9E3779B9 + (h << 6) + (h >> 2);
  }
  return h;
}

void Table::Deduplicate() {
  struct Entry {
    const Tuple* t;
    size_t hash;
    bool operator==(const Entry& other) const { return *t == *other.t; }
  };
  struct EntryHash {
    size_t operator()(const Entry& e) const { return e.hash; }
  };
  std::unordered_set<Entry, EntryHash> seen;
  std::vector<Tuple> kept;
  kept.reserve(rows_.size());
  for (Tuple& row : rows_) {
    // Two-phase: test membership against kept rows.
    Entry probe{&row, TupleHash(row)};
    if (seen.find(probe) != seen.end()) continue;
    kept.push_back(std::move(row));
    seen.insert(Entry{&kept.back(), probe.hash});
  }
  rows_ = std::move(kept);
}

void Table::SortByIdColumn(int32_t col) {
  SVX_CHECK(col >= 0 && col < schema_.size());
  std::stable_sort(rows_.begin(), rows_.end(),
                   [col](const Tuple& a, const Tuple& b) {
                     const Value& va = a[static_cast<size_t>(col)];
                     const Value& vb = b[static_cast<size_t>(col)];
                     if (va.IsNull()) return false;
                     if (vb.IsNull()) return true;
                     return va.AsId() < vb.AsId();
                   });
}

namespace {

int VariantRank(const Value& v) {
  if (v.IsNull()) return 0;
  if (v.IsString()) return 1;
  if (v.IsId()) return 2;
  if (v.IsContent()) return 3;
  return 4;
}

}  // namespace

int CompareValues(const Value& a, const Value& b) {
  int ra = VariantRank(a);
  int rb = VariantRank(b);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:
      return 0;
    case 1:
      return a.AsString().compare(b.AsString());
    case 2:
      return a.AsId().Compare(b.AsId());
    case 3: {
      const NodeRef& na = a.AsContent();
      const NodeRef& nb = b.AsContent();
      SVX_CHECK(na.doc != nullptr && nb.doc != nullptr);
      return na.doc->ord_path(na.node).Compare(nb.doc->ord_path(nb.node));
    }
    default: {
      const Table& ta = a.AsTable();
      const Table& tb = b.AsTable();
      int64_t n = std::min(ta.NumRows(), tb.NumRows());
      for (int64_t i = 0; i < n; ++i) {
        int c = CompareTuples(ta.row(i), tb.row(i));
        if (c != 0) return c;
      }
      if (ta.NumRows() != tb.NumRows()) {
        return ta.NumRows() < tb.NumRows() ? -1 : 1;
      }
      return 0;
    }
  }
}

int CompareTuples(const Tuple& a, const Tuple& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = CompareValues(a[i], b[i]);
    if (c != 0) return c;
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  return 0;
}

void Table::SortRowsCanonical() {
  std::sort(rows_.begin(), rows_.end(), [](const Tuple& a, const Tuple& b) {
    return CompareTuples(a, b) < 0;
  });
}

bool Table::EqualsIgnoringOrder(const Table& other) const {
  if (NumRows() != other.NumRows()) return false;
  // Multiset comparison via matching flags (tables are small in tests; view
  // extents are deduplicated sets anyway).
  std::vector<bool> used(static_cast<size_t>(other.NumRows()), false);
  for (const Tuple& row : rows_) {
    bool found = false;
    for (size_t j = 0; j < used.size(); ++j) {
      if (used[j]) continue;
      if (other.rows_[j] == row) {
        used[j] = true;
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

std::string Table::ToString() const {
  std::string out = schema_.ToString();
  out += '\n';
  for (const Tuple& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += row[i].ToString();
    }
    out += '\n';
  }
  return out;
}

}  // namespace svx
