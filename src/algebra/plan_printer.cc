#include "src/algebra/plan_printer.h"

#include "src/util/strings.h"

namespace svx {

namespace {

std::string NodeLabel(const PlanNode& p) {
  switch (p.kind) {
    case PlanKind::kViewScan:
      return "scan(" + p.view_name + ")";
    case PlanKind::kIdEqJoin:
      return StrFormat("⋈= [%s = %s]",
                       p.children[0]->schema.column(p.left_col).name.c_str(),
                       p.children[1]->schema.column(p.right_col).name.c_str());
    case PlanKind::kStructJoin: {
      const char* axis = p.struct_axis == StructAxis::kParent ? "≺" : "≺≺";
      std::string op = p.nested_join ? StrFormat("⋈n%s", axis)
                                     : StrFormat("⋈%s", axis);
      return StrFormat("%s [%s, %s]", op.c_str(),
                       p.children[0]->schema.column(p.left_col).name.c_str(),
                       p.children[1]->schema.column(p.right_col).name.c_str());
    }
    case PlanKind::kSelect:
      switch (p.select_kind) {
        case SelectKind::kNonNull:
          return StrFormat("σ [%s ≠ ⊥]",
                           p.schema.column(p.select_col).name.c_str());
        case SelectKind::kIsNull:
          return StrFormat("σ [%s = ⊥]",
                           p.schema.column(p.select_col).name.c_str());
        case SelectKind::kLabelEq:
          return StrFormat("σ [%s = '%s']",
                           p.schema.column(p.select_col).name.c_str(),
                           p.select_label.c_str());
        case SelectKind::kValuePred:
          return StrFormat("σ [%s: %s]",
                           p.schema.column(p.select_col).name.c_str(),
                           p.select_pred.ToString().c_str());
      }
      return "σ";
    case PlanKind::kProject: {
      std::string cols;
      for (size_t i = 0; i < p.project_cols.size(); ++i) {
        if (i > 0) cols += ", ";
        cols += p.schema.column(static_cast<int32_t>(i)).name;
      }
      return "π [" + cols + "]";
    }
    case PlanKind::kUnion:
      return "∪";
    case PlanKind::kUnnest:
      return StrFormat(
          "unnest [%s]",
          p.children[0]->schema.column(p.unnest_col).name.c_str());
    case PlanKind::kGroupBy:
      return StrFormat("groupby → %s", p.group_col_name.c_str());
    case PlanKind::kNavigate: {
      std::string path;
      for (const NavStep& s : p.navigate_steps) {
        path += s.axis == Axis::kChild ? "/" : "//";
        path += s.label;
      }
      return StrFormat(
          "navC [%s%s]",
          p.children[0]->schema.column(p.navigate_col).name.c_str(),
          path.c_str());
    }
    case PlanKind::kDeriveParent:
      return StrFormat("navfID [%s ↑%d → %s]",
                       p.children[0]->schema.column(p.derive_col).name.c_str(),
                       p.derive_steps, p.derive_name.c_str());
  }
  return "?";
}

void Render(const PlanNode& p, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(NodeLabel(p));
  out->push_back('\n');
  for (const PlanPtr& c : p.children) Render(*c, depth + 1, out);
}

void RenderCompact(const PlanNode& p, std::string* out) {
  switch (p.kind) {
    case PlanKind::kViewScan:
      out->append(p.view_name);
      return;
    case PlanKind::kIdEqJoin:
    case PlanKind::kStructJoin: {
      out->push_back('(');
      RenderCompact(*p.children[0], out);
      if (p.kind == PlanKind::kIdEqJoin) {
        out->append(" ⋈= ");
      } else {
        out->append(p.nested_join ? " ⋈n" : " ⋈");
        out->append(p.struct_axis == StructAxis::kParent ? "≺ " : "≺≺ ");
      }
      RenderCompact(*p.children[1], out);
      out->push_back(')');
      return;
    }
    case PlanKind::kUnion: {
      out->push_back('(');
      for (size_t i = 0; i < p.children.size(); ++i) {
        if (i > 0) out->append(" ∪ ");
        RenderCompact(*p.children[i], out);
      }
      out->push_back(')');
      return;
    }
    default:
      out->append(PlanKindName(p.kind));
      out->push_back('(');
      for (size_t i = 0; i < p.children.size(); ++i) {
        if (i > 0) out->append(", ");
        RenderCompact(*p.children[i], out);
      }
      out->push_back(')');
      return;
  }
}

}  // namespace

std::string PlanToString(const PlanNode& plan) {
  std::string out;
  Render(plan, 0, &out);
  return out;
}

std::string PlanToCompactString(const PlanNode& plan) {
  std::string out;
  RenderCompact(plan, &out);
  return out;
}

}  // namespace svx
