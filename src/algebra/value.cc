#include "src/algebra/value.h"

#include "src/algebra/relation.h"

namespace svx {

bool Value::operator==(const Value& other) const {
  if (v_.index() != other.v_.index()) return false;
  if (IsNull()) return true;
  if (IsString()) return AsString() == other.AsString();
  if (IsId()) return AsId() == other.AsId();
  if (IsContent()) return AsContent() == other.AsContent();
  // Nested tables: deep row-set comparison.
  return AsTable().EqualsIgnoringOrder(other.AsTable());
}

size_t Value::Hash() const {
  auto mix = [](size_t h, size_t x) {
    return h ^ (x + 0x9E3779B9 + (h << 6) + (h >> 2));
  };
  if (IsNull()) return 0x5E5E5E5Eu;
  if (IsString()) return mix(1, std::hash<std::string>{}(AsString()));
  if (IsId()) return mix(2, AsId().Hash());
  if (IsContent()) {
    return mix(3, std::hash<const void*>{}(AsContent().doc) ^
                      static_cast<size_t>(AsContent().node));
  }
  // Nested tables: order-insensitive combination of row hashes.
  size_t h = 4;
  size_t acc = 0;
  for (const Tuple& row : AsTable().rows()) acc += TupleHash(row);
  return mix(h, acc);
}

std::string Value::ToString(bool deep) const {
  if (IsNull()) return "⊥";
  if (IsString()) return AsString();
  if (IsId()) return AsId().ToString();
  if (IsContent()) {
    const NodeRef& r = AsContent();
    if (r.doc == nullptr || r.node == kInvalidNode) return "content()";
    return "content(" + r.doc->label(r.node) + "@" +
           r.doc->ord_path(r.node).ToString() + ")";
  }
  if (!deep) {
    return "[" + std::to_string(AsTable().NumRows()) + " rows]";
  }
  std::string out = "{";
  for (int64_t i = 0; i < AsTable().NumRows(); ++i) {
    if (i > 0) out += "; ";
    const Tuple& row = AsTable().row(i);
    out += "(";
    for (size_t j = 0; j < row.size(); ++j) {
      if (j > 0) out += ", ";
      out += row[j].ToString(deep);
    }
    out += ")";
  }
  out += "}";
  return out;
}

}  // namespace svx
