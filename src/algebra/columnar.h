// Compressed columnar extents. A materialized view's extent is stored as
// one immutable compressed chunk per schema column instead of a row-major
// std::vector<Tuple> blob:
//
//   * label/value columns  -> dictionary encoding (sorted distinct strings
//                             plus one small per-row code),
//   * id/content columns   -> delta-encoded ORDPATHs (varint components,
//                             common prefix shared with the previous row;
//                             content cells store the referenced node's
//                             ORDPATH, so the chunk is document-independent
//                             and rebinding happens at decode),
//   * nested columns       -> one recursively columnar child extent holding
//                             all group rows back to back, plus per-row
//                             offsets and a ⊥ bitmap,
//   * anything type-mixed  -> a raw fallback chunk of v1-style cells.
//
// Chunks are held by shared_ptr and never mutated, so maintenance can share
// every untouched column between epochs (EncodeSharing) and a decoded table
// can be dropped under memory pressure while the compressed truth stays
// resident. The executor decodes only the columns a plan references
// (DecodeColumns); unreferenced columns come back as ⊥ at full arity.
//
// Encoding is deterministic: equal tables (same schema, same row order)
// produce byte-identical serialized chunks — the property the view store's
// maintained-vs-rematerialized byte-identity checks rely on.
#ifndef SVX_ALGEBRA_COLUMNAR_H_
#define SVX_ALGEBRA_COLUMNAR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/algebra/relation.h"
#include "src/util/status.h"
#include "src/xml/document.h"

namespace svx {

class ColumnarExtent;
using ColumnarExtentPtr = std::shared_ptr<const ColumnarExtent>;

/// One immutable encoded column. Which members are populated depends on
/// `encoding`; the others stay empty.
struct ColumnChunk {
  enum Encoding : uint8_t {
    kDict = 0,     // strings: dictionary + per-row codes
    kIds = 1,      // ORDPATH ids, delta-encoded
    kContent = 2,  // content refs as ORDPATHs, delta-encoded
    kNested = 3,   // nested tables: child extent + offsets + ⊥ bitmap
    kRaw = 4,      // fallback: v1-style cell stream (type-mixed columns)
  };
  static constexpr uint32_t kNullCode = 0xFFFFFFFFu;

  Encoding encoding = kRaw;
  int64_t num_rows = 0;

  // kDict: sorted distinct non-null strings; codes[row] indexes dict or is
  // kNullCode for ⊥.
  std::vector<std::string> dict;
  std::vector<uint32_t> codes;

  // kIds / kContent: per row `varint(0)` for ⊥, else
  // `varint(1 + shared_prefix_len) varint(suffix_len) suffix components`
  // where the prefix is shared with the previous non-null row's ORDPATH.
  std::string id_bytes;

  // kNested: child holds every non-null group's rows concatenated in row
  // order; group i spans child rows [offsets[i], offsets[i+1]);
  // nulls[i] != 0 marks a ⊥ cell (distinct from an empty group).
  ColumnarExtentPtr child;
  std::vector<int64_t> offsets;  // size num_rows + 1
  std::vector<uint8_t> nulls;    // size num_rows

  // kRaw: cells in the v1 extent cell encoding, back to back.
  std::string raw_cells;

  /// Deep structural equality (child extents compare recursively). Used by
  /// EncodeSharing to reuse the previous epoch's chunk objects.
  bool operator==(const ColumnChunk& other) const;
  bool operator!=(const ColumnChunk& other) const { return !(*this == other); }
};

using ColumnChunkPtr = std::shared_ptr<const ColumnChunk>;

/// A compressed, immutable, column-major extent (see file comment).
class ColumnarExtent {
 public:
  ColumnarExtent() = default;

  /// Encodes `table` column by column. Deterministic.
  static ColumnarExtent Encode(const Table& table);

  /// Like Encode, but any column whose freshly encoded chunk equals the
  /// corresponding chunk of `prev` (same schema position) shares `prev`'s
  /// chunk object instead — untouched columns stay shared across epochs.
  static ColumnarExtent EncodeSharing(const Table& table,
                                      const ColumnarExtent& prev);

  /// Decodes every column back to a row-major table (exact inverse of
  /// Encode, preserving row order). Content cells rebind against `doc`; a
  /// content cell with `doc == nullptr` or an ORDPATH absent from `doc` is
  /// an error.
  [[nodiscard]] Result<Table> Decode(const Document* doc) const;

  /// Decodes only the columns with `used[c]` true; the rest are ⊥ at full
  /// arity (same schema, same row count). `used` must have one entry per
  /// column. A used nested column decodes its whole subtree.
  [[nodiscard]] Result<Table> DecodeColumns(const std::vector<bool>& used,
                                            const Document* doc) const;

  const Schema& schema() const { return schema_; }
  int64_t num_rows() const { return num_rows_; }
  int32_t num_columns() const { return schema_.size(); }
  const ColumnChunkPtr& column(int32_t i) const {
    SVX_DCHECK(i >= 0 && i < static_cast<int32_t>(columns_.size()));
    return columns_[static_cast<size_t>(i)];
  }

  /// True if any cell anywhere (including nested and raw chunks) is a
  /// content reference — such an extent needs a Document to decode.
  bool has_content() const { return has_content_; }

  /// Serialized size of the columnar payload in bytes (AppendBytes length):
  /// the "compressed bytes" the memory budget and benches account.
  int64_t SerializedByteSize() const;

  /// Appends the deterministic serialized payload (row count + chunks; the
  /// schema is *not* included — extent_io writes it in the file header).
  void AppendBytes(std::string* out) const;

  /// Parses a payload produced by AppendBytes for `schema`. `*pos` is
  /// advanced past the payload.
  [[nodiscard]] static Result<ColumnarExtent> FromBytes(std::string_view bytes,
                                                        size_t* pos,
                                                        Schema schema);

  /// Calls `fn` for every content reference's ORDPATH, in storage order,
  /// including nested children and raw chunks — the cheap way to validate
  /// that every reference resolves in a document without decoding rows.
  [[nodiscard]] Status ForEachContentId(
      const std::function<Status(const OrdPath&)>& fn) const;

  /// Deep chunk equality (same schema, same encoded bytes).
  bool operator==(const ColumnarExtent& other) const;

 private:
  Schema schema_;
  int64_t num_rows_ = 0;
  std::vector<ColumnChunkPtr> columns_;  // one per schema column
  bool has_content_ = false;
};

}  // namespace svx

#endif  // SVX_ALGEBRA_COLUMNAR_H_
