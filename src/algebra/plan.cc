#include "src/algebra/plan.h"

namespace svx {

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kViewScan:
      return "scan";
    case PlanKind::kIdEqJoin:
      return "join=";
    case PlanKind::kStructJoin:
      return "sjoin";
    case PlanKind::kSelect:
      return "select";
    case PlanKind::kProject:
      return "project";
    case PlanKind::kUnion:
      return "union";
    case PlanKind::kUnnest:
      return "unnest";
    case PlanKind::kGroupBy:
      return "groupby";
    case PlanKind::kNavigate:
      return "navC";
    case PlanKind::kDeriveParent:
      return "navfID";
  }
  return "?";
}

int32_t PlanNode::NumLeaves() const {
  if (kind == PlanKind::kViewScan) return 1;
  int32_t n = 0;
  for (const PlanPtr& c : children) n += c->NumLeaves();
  return n;
}

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto out = std::make_unique<PlanNode>();
  *out = PlanNode{};  // value-init scalars
  out->kind = kind;
  out->schema = schema;
  out->view_name = view_name;
  out->left_col = left_col;
  out->right_col = right_col;
  out->struct_axis = struct_axis;
  out->nested_join = nested_join;
  out->nested_col_name = nested_col_name;
  out->select_kind = select_kind;
  out->select_col = select_col;
  out->select_label = select_label;
  out->select_pred = select_pred;
  out->project_cols = project_cols;
  out->unnest_col = unnest_col;
  out->unnest_outer = unnest_outer;
  out->group_key_cols = group_key_cols;
  out->group_col_name = group_col_name;
  out->navigate_col = navigate_col;
  out->navigate_steps = navigate_steps;
  out->navigate_attrs = navigate_attrs;
  out->navigate_name = navigate_name;
  out->derive_col = derive_col;
  out->derive_steps = derive_steps;
  out->derive_name = derive_name;
  for (const PlanPtr& c : children) out->children.push_back(c->Clone());
  return out;
}

namespace {

Schema ConcatSchemas(const Schema& a, const Schema& b) {
  Schema out = a;
  for (const ColumnSpec& c : b.columns()) out.Append(c);
  return out;
}

void AppendAttrColumns(Schema* schema, const std::string& prefix,
                       uint8_t attrs) {
  if (attrs & kAttrId) {
    schema->Append({prefix + ".id", ColumnKind::kId, nullptr});
  }
  if (attrs & kAttrLabel) {
    schema->Append({prefix + ".l", ColumnKind::kLabel, nullptr});
  }
  if (attrs & kAttrValue) {
    schema->Append({prefix + ".v", ColumnKind::kValue, nullptr});
  }
  if (attrs & kAttrContent) {
    schema->Append({prefix + ".c", ColumnKind::kContent, nullptr});
  }
}

}  // namespace

PlanPtr MakeViewScan(const std::string& view_name, Schema schema) {
  auto p = std::make_unique<PlanNode>();
  p->kind = PlanKind::kViewScan;
  p->view_name = view_name;
  p->schema = std::move(schema);
  return p;
}

PlanPtr MakeIdEqJoin(PlanPtr left, PlanPtr right, int32_t left_col,
                     int32_t right_col) {
  SVX_CHECK(left->schema.column(left_col).kind == ColumnKind::kId);
  SVX_CHECK(right->schema.column(right_col).kind == ColumnKind::kId);
  auto p = std::make_unique<PlanNode>();
  p->kind = PlanKind::kIdEqJoin;
  p->schema = ConcatSchemas(left->schema, right->schema);
  p->left_col = left_col;
  p->right_col = right_col;
  p->children.push_back(std::move(left));
  p->children.push_back(std::move(right));
  return p;
}

PlanPtr MakeStructJoin(PlanPtr left, PlanPtr right, int32_t left_col,
                       int32_t right_col, StructAxis axis) {
  SVX_CHECK(left->schema.column(left_col).kind == ColumnKind::kId);
  SVX_CHECK(right->schema.column(right_col).kind == ColumnKind::kId);
  auto p = std::make_unique<PlanNode>();
  p->kind = PlanKind::kStructJoin;
  p->schema = ConcatSchemas(left->schema, right->schema);
  p->left_col = left_col;
  p->right_col = right_col;
  p->struct_axis = axis;
  p->children.push_back(std::move(left));
  p->children.push_back(std::move(right));
  return p;
}

PlanPtr MakeNestedStructJoin(PlanPtr left, PlanPtr right, int32_t left_col,
                             int32_t right_col, StructAxis axis,
                             const std::string& nested_col_name) {
  SVX_CHECK(left->schema.column(left_col).kind == ColumnKind::kId);
  SVX_CHECK(right->schema.column(right_col).kind == ColumnKind::kId);
  auto p = std::make_unique<PlanNode>();
  p->kind = PlanKind::kStructJoin;
  p->nested_join = true;
  p->nested_col_name = nested_col_name;
  p->schema = left->schema;
  p->schema.Append({nested_col_name, ColumnKind::kNested,
                    std::make_shared<Schema>(right->schema)});
  p->left_col = left_col;
  p->right_col = right_col;
  p->struct_axis = axis;
  p->children.push_back(std::move(left));
  p->children.push_back(std::move(right));
  return p;
}

namespace {
PlanPtr MakeSelect(PlanPtr input, SelectKind kind, int32_t col,
                   std::string label, Predicate pred) {
  SVX_CHECK(col >= 0 && col < input->schema.size());
  auto p = std::make_unique<PlanNode>();
  p->kind = PlanKind::kSelect;
  p->schema = input->schema;
  p->select_kind = kind;
  p->select_col = col;
  p->select_label = std::move(label);
  p->select_pred = std::move(pred);
  p->children.push_back(std::move(input));
  return p;
}
}  // namespace

PlanPtr MakeSelectNonNull(PlanPtr input, int32_t col) {
  return MakeSelect(std::move(input), SelectKind::kNonNull, col, "",
                    Predicate::True());
}

PlanPtr MakeSelectIsNull(PlanPtr input, int32_t col) {
  return MakeSelect(std::move(input), SelectKind::kIsNull, col, "",
                    Predicate::True());
}

PlanPtr MakeSelectLabel(PlanPtr input, int32_t col, const std::string& label) {
  SVX_CHECK(input->schema.column(col).kind == ColumnKind::kLabel);
  return MakeSelect(std::move(input), SelectKind::kLabelEq, col, label,
                    Predicate::True());
}

PlanPtr MakeSelectValue(PlanPtr input, int32_t col, Predicate pred) {
  return MakeSelect(std::move(input), SelectKind::kValuePred, col, "",
                    std::move(pred));
}

PlanPtr MakeProject(PlanPtr input, std::vector<int32_t> cols) {
  auto p = std::make_unique<PlanNode>();
  p->kind = PlanKind::kProject;
  for (int32_t c : cols) p->schema.Append(input->schema.column(c));
  p->project_cols = std::move(cols);
  p->children.push_back(std::move(input));
  return p;
}

PlanPtr MakeUnion(std::vector<PlanPtr> inputs) {
  SVX_CHECK(!inputs.empty());
  auto p = std::make_unique<PlanNode>();
  p->kind = PlanKind::kUnion;
  p->schema = inputs[0]->schema;
  for (size_t i = 1; i < inputs.size(); ++i) {
    SVX_CHECK_MSG(inputs[i]->schema.size() == p->schema.size(),
                  "union inputs must have equal arity");
  }
  for (PlanPtr& in : inputs) p->children.push_back(std::move(in));
  return p;
}

namespace {
PlanPtr MakeUnnestImpl(PlanPtr input, int32_t col, bool outer) {
  SVX_CHECK(input->schema.column(col).kind == ColumnKind::kNested);
  auto p = std::make_unique<PlanNode>();
  p->kind = PlanKind::kUnnest;
  const Schema& in = input->schema;
  for (int32_t i = 0; i < in.size(); ++i) {
    if (i == col) {
      for (const ColumnSpec& c : in.column(col).nested->columns()) {
        p->schema.Append(c);
      }
    } else {
      p->schema.Append(in.column(i));
    }
  }
  p->unnest_col = col;
  p->unnest_outer = outer;
  p->children.push_back(std::move(input));
  return p;
}
}  // namespace

PlanPtr MakeUnnest(PlanPtr input, int32_t col) {
  return MakeUnnestImpl(std::move(input), col, false);
}

PlanPtr MakeOuterUnnest(PlanPtr input, int32_t col) {
  return MakeUnnestImpl(std::move(input), col, true);
}

PlanPtr MakeGroupBy(PlanPtr input, std::vector<int32_t> key_cols,
                    const std::string& group_col_name) {
  auto p = std::make_unique<PlanNode>();
  p->kind = PlanKind::kGroupBy;
  const Schema& in = input->schema;
  auto nested = std::make_shared<Schema>();
  std::vector<bool> is_key(static_cast<size_t>(in.size()), false);
  for (int32_t k : key_cols) is_key[static_cast<size_t>(k)] = true;
  for (int32_t k : key_cols) p->schema.Append(in.column(k));
  for (int32_t i = 0; i < in.size(); ++i) {
    if (!is_key[static_cast<size_t>(i)]) nested->Append(in.column(i));
  }
  p->schema.Append({group_col_name, ColumnKind::kNested, nested});
  p->group_key_cols = std::move(key_cols);
  p->group_col_name = group_col_name;
  p->children.push_back(std::move(input));
  return p;
}

PlanPtr MakeNavigate(PlanPtr input, int32_t content_col,
                     std::vector<NavStep> steps, uint8_t attrs,
                     const std::string& name) {
  SVX_CHECK(input->schema.column(content_col).kind == ColumnKind::kContent);
  SVX_CHECK(attrs != 0);
  auto p = std::make_unique<PlanNode>();
  p->kind = PlanKind::kNavigate;
  p->schema = input->schema;
  AppendAttrColumns(&p->schema, name, attrs);
  p->navigate_col = content_col;
  p->navigate_steps = std::move(steps);
  p->navigate_attrs = attrs;
  p->navigate_name = name;
  p->children.push_back(std::move(input));
  return p;
}

PlanPtr MakeDeriveParent(PlanPtr input, int32_t id_col, int32_t steps,
                         const std::string& name) {
  SVX_CHECK(input->schema.column(id_col).kind == ColumnKind::kId);
  SVX_CHECK(steps >= 1);
  auto p = std::make_unique<PlanNode>();
  p->kind = PlanKind::kDeriveParent;
  p->schema = input->schema;
  p->schema.Append({name, ColumnKind::kId, nullptr});
  p->derive_col = id_col;
  p->derive_steps = steps;
  p->derive_name = name;
  p->children.push_back(std::move(input));
  return p;
}

}  // namespace svx
