// Logical algebraic plans over materialized views (paper §3.2): view scans
// combined with ⋈= (ID equality), ⋈≺ / ⋈≺≺ (structural joins, optionally
// nested per §4.6), σ, π, ∪, plus the §4.6 adaptation operators: unnest,
// group-by (re-nesting), XPath navigation inside stored content (navC) and
// parent-ID derivation (navfID).
#ifndef SVX_ALGEBRA_PLAN_H_
#define SVX_ALGEBRA_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "src/algebra/relation.h"
#include "src/pattern/pattern.h"
#include "src/pattern/predicate.h"

namespace svx {

/// Operator tags.
enum class PlanKind {
  kViewScan,
  kIdEqJoin,      // ⋈=: equality of structural ids
  kStructJoin,    // ⋈≺ (parent) / ⋈≺≺ (ancestor)
  kSelect,        // σ
  kProject,       // π
  kUnion,         // ∪ (set semantics)
  kUnnest,        // flattens one nested column
  kGroupBy,       // re-nests non-key columns under a new nested column
  kNavigate,      // navC: XPath step navigation inside a content column
  kDeriveParent,  // navfID: parent-ID derivation from a stored ID (§4.6)
};

const char* PlanKindName(PlanKind kind);

/// Structural join flavor.
enum class StructAxis { kParent, kAncestor };

/// Selection predicate kinds (§4.6 adds label and value selections).
enum class SelectKind { kNonNull, kIsNull, kLabelEq, kValuePred };

/// One navigation step inside stored content.
struct NavStep {
  Axis axis = Axis::kChild;
  std::string label;  // "*" allowed
};

/// A logical plan node. Children are owned; `schema` is the output schema,
/// computed at construction.
struct PlanNode {
  PlanKind kind;
  std::vector<std::unique_ptr<PlanNode>> children;
  Schema schema;

  // kViewScan
  std::string view_name;

  // kIdEqJoin / kStructJoin: column indexes into the *output* schemas of the
  // two children (left columns first in the join output).
  int32_t left_col = -1;
  int32_t right_col = -1;
  StructAxis struct_axis = StructAxis::kAncestor;
  /// Nested structural join (§4.6): groups the right side under one nested
  /// column instead of multiplying rows.
  bool nested_join = false;
  std::string nested_col_name;

  // kSelect
  SelectKind select_kind = SelectKind::kNonNull;
  int32_t select_col = -1;
  std::string select_label;
  Predicate select_pred = Predicate::True();

  // kProject
  std::vector<int32_t> project_cols;

  // kUnnest
  int32_t unnest_col = -1;
  /// Outer unnest: an empty (or ⊥) group yields one ⊥-padded row instead of
  /// dropping the tuple — the inverse of the empty-group-preserving group-by
  /// (Figure 12).
  bool unnest_outer = false;

  // kGroupBy
  std::vector<int32_t> group_key_cols;
  std::string group_col_name;

  // kNavigate
  int32_t navigate_col = -1;
  std::vector<NavStep> navigate_steps;
  uint8_t navigate_attrs = 0;  // kAttr* of the reached node
  std::string navigate_name;   // prefix for the new columns

  // kDeriveParent
  int32_t derive_col = -1;
  int32_t derive_steps = 1;
  std::string derive_name;

  /// Number of view occurrences in the plan — the plan size |P| of §3.2.
  int32_t NumLeaves() const;

  /// Deep copy.
  std::unique_ptr<PlanNode> Clone() const;
};

using PlanPtr = std::unique_ptr<PlanNode>;

// ---- Factories (each computes the output schema) ----

PlanPtr MakeViewScan(const std::string& view_name, Schema schema);
PlanPtr MakeIdEqJoin(PlanPtr left, PlanPtr right, int32_t left_col,
                     int32_t right_col);
PlanPtr MakeStructJoin(PlanPtr left, PlanPtr right, int32_t left_col,
                       int32_t right_col, StructAxis axis);
/// Nested structural join: right-side columns are grouped per left row under
/// a nested column `nested_col_name`.
PlanPtr MakeNestedStructJoin(PlanPtr left, PlanPtr right, int32_t left_col,
                             int32_t right_col, StructAxis axis,
                             const std::string& nested_col_name);
PlanPtr MakeSelectNonNull(PlanPtr input, int32_t col);
PlanPtr MakeSelectIsNull(PlanPtr input, int32_t col);
PlanPtr MakeSelectLabel(PlanPtr input, int32_t col, const std::string& label);
PlanPtr MakeSelectValue(PlanPtr input, int32_t col, Predicate pred);
PlanPtr MakeProject(PlanPtr input, std::vector<int32_t> cols);
PlanPtr MakeUnion(std::vector<PlanPtr> inputs);
PlanPtr MakeUnnest(PlanPtr input, int32_t col);
PlanPtr MakeOuterUnnest(PlanPtr input, int32_t col);
PlanPtr MakeGroupBy(PlanPtr input, std::vector<int32_t> key_cols,
                    const std::string& group_col_name);
PlanPtr MakeNavigate(PlanPtr input, int32_t content_col,
                     std::vector<NavStep> steps, uint8_t attrs,
                     const std::string& name);
PlanPtr MakeDeriveParent(PlanPtr input, int32_t id_col, int32_t steps,
                         const std::string& name);

}  // namespace svx

#endif  // SVX_ALGEBRA_PLAN_H_
