// Text rendering of logical plans for tests, examples and the experiment
// harnesses.
#ifndef SVX_ALGEBRA_PLAN_PRINTER_H_
#define SVX_ALGEBRA_PLAN_PRINTER_H_

#include <string>

#include "src/algebra/plan.h"

namespace svx {

/// Multi-line indented operator tree.
std::string PlanToString(const PlanNode& plan);

/// One-line compact form, e.g. "(V1 ⋈= V2) ∪ V3".
std::string PlanToCompactString(const PlanNode& plan);

}  // namespace svx

#endif  // SVX_ALGEBRA_PLAN_PRINTER_H_
