// Values stored in view extents and flowing through plans: the four
// attribute kinds of §4.4 (structural ID, label, atomic value, content) plus
// null (⊥, §4.3) and nested tables (§4.5).
#ifndef SVX_ALGEBRA_VALUE_H_
#define SVX_ALGEBRA_VALUE_H_

#include <memory>
#include <string>
#include <variant>

#include "src/util/check.h"
#include "src/xml/document.h"
#include "src/xml/node_id.h"

namespace svx {

class Table;
using TablePtr = std::shared_ptr<const Table>;

/// A reference to stored content: the subtree rooted at `node` (the paper's
/// C attribute, "stored ... as a reference to some repository").
struct NodeRef {
  const Document* doc = nullptr;
  NodeIndex node = kInvalidNode;

  bool operator==(const NodeRef& other) const {
    return doc == other.doc && node == other.node;
  }
};

/// A single cell value.
class Value {
 public:
  /// ⊥ (null).
  Value() : v_(std::monostate{}) {}
  /// Label or atomic value.
  explicit Value(std::string s) : v_(std::move(s)) {}
  /// Structural identifier.
  explicit Value(OrdPath id) : v_(std::move(id)) {}
  /// Content reference.
  explicit Value(NodeRef ref) : v_(ref) {}
  /// Nested table.
  explicit Value(TablePtr table) : v_(std::move(table)) {
    SVX_DCHECK(std::get<TablePtr>(v_) != nullptr);
  }

  bool IsNull() const { return std::holds_alternative<std::monostate>(v_); }
  bool IsString() const { return std::holds_alternative<std::string>(v_); }
  bool IsId() const { return std::holds_alternative<OrdPath>(v_); }
  bool IsContent() const { return std::holds_alternative<NodeRef>(v_); }
  bool IsTable() const { return std::holds_alternative<TablePtr>(v_); }

  const std::string& AsString() const { return std::get<std::string>(v_); }
  const OrdPath& AsId() const { return std::get<OrdPath>(v_); }
  const NodeRef& AsContent() const { return std::get<NodeRef>(v_); }
  const Table& AsTable() const { return *std::get<TablePtr>(v_); }
  TablePtr AsTablePtr() const { return std::get<TablePtr>(v_); }

  /// Deep equality (nested tables compare row sets in order).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Deep hash consistent with operator==.
  size_t Hash() const;

  /// Human-readable rendering ("⊥", "1.3.2", "pen", "[2 rows]"-style for
  /// tables unless `deep`).
  std::string ToString(bool deep = true) const;

 private:
  std::variant<std::monostate, std::string, OrdPath, NodeRef, TablePtr> v_;
};

}  // namespace svx

#endif  // SVX_ALGEBRA_VALUE_H_
