// Physical evaluation of logical plans over a catalog of materialized view
// extents. Structural joins exploit the ORDPATH prefix property (an
// ancestor's id is a prefix of its descendants' ids, [1][21][25]): the
// ancestor join probes a hash table of left ids with the right ids'
// prefixes, giving O(|R| x depth) instead of a nested loop.
#ifndef SVX_ALGEBRA_EXECUTOR_H_
#define SVX_ALGEBRA_EXECUTOR_H_

#include <string>
#include <unordered_map>

#include "src/algebra/plan.h"
#include "src/algebra/relation.h"
#include "src/util/status.h"

namespace svx {

class TraceSpan;  // src/observability/trace.h

/// Name -> extent mapping used by view scans. Extents are borrowed.
class Catalog {
 public:
  void Register(const std::string& name, const Table* table) {
    views_[name] = table;
  }
  const Table* Find(const std::string& name) const {
    auto it = views_.find(name);
    return it == views_.end() ? nullptr : it->second;
  }

 private:
  std::unordered_map<std::string, const Table*> views_;
};

/// Executes `plan` against `catalog`; returns the materialized result.
/// Every execution feeds the process metrics (rows scanned from extents,
/// rows emitted, latency). With a non-null `trace`, a child span per plan
/// operator is attached under it — the span tree mirrors the plan shape,
/// each node carrying an out_rows attribute (view scans also name their
/// view). Tracing belongs to one query on one thread.
Result<Table> Execute(const PlanNode& plan, const Catalog& catalog,
                      TraceSpan* trace = nullptr);

}  // namespace svx

#endif  // SVX_ALGEBRA_EXECUTOR_H_
