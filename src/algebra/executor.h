// Physical evaluation of logical plans over a catalog of materialized view
// extents. Structural joins exploit the ORDPATH prefix property (an
// ancestor's id is a prefix of its descendants' ids, [1][21][25]): the
// ancestor join probes a hash table of left ids with the right ids'
// prefixes, giving O(|R| x depth) instead of a nested loop.
#ifndef SVX_ALGEBRA_EXECUTOR_H_
#define SVX_ALGEBRA_EXECUTOR_H_

#include <functional>
#include <string>
#include <unordered_map>

#include "src/algebra/plan.h"
#include "src/algebra/relation.h"
#include "src/util/status.h"

namespace svx {

class TraceSpan;       // src/observability/trace.h
class ColumnarExtent;  // src/algebra/columnar.h

/// A compressed extent binding for view scans. The scan first consults
/// `resident` for an already-decoded table; on a miss it decodes only the
/// columns the plan references straight from the chunks (unreferenced
/// columns come back ⊥) and reports the decode through `loaded`.
struct ColumnarSource {
  const ColumnarExtent* extent = nullptr;
  /// Document content references rebind against at decode; may be null for
  /// content-free extents.
  const Document* doc = nullptr;
  /// Optional cache probe: a decoded table pinned by the returned
  /// shared_ptr, or null when evicted / never decoded.
  std::function<TablePtr()> resident;
  /// Optional decode report: `full` carries the decoded table when every
  /// column was materialized (so the owner may cache it), null for a
  /// partial decode; `decode_us` is the decode latency.
  std::function<void(TablePtr full, int64_t decode_us)> loaded;
};

/// Name -> extent mapping used by view scans. Either an eager row-major
/// table (borrowed) or a columnar source; at most one per name.
class Catalog {
 public:
  struct Entry {
    const Table* table = nullptr;  // eager binding, if any
    ColumnarSource columnar;       // else columnar binding
  };

  void Register(const std::string& name, const Table* table) {
    views_[name].table = table;
    views_[name].columnar = ColumnarSource{};
  }
  void RegisterColumnar(const std::string& name, ColumnarSource source) {
    views_[name].table = nullptr;
    views_[name].columnar = std::move(source);
  }
  /// The eager table, or null for columnar (or unknown) bindings.
  const Table* Find(const std::string& name) const {
    const Entry* e = FindEntry(name);
    return e == nullptr ? nullptr : e->table;
  }
  const Entry* FindEntry(const std::string& name) const {
    auto it = views_.find(name);
    return it == views_.end() ? nullptr : &it->second;
  }

 private:
  std::unordered_map<std::string, Entry> views_;
};

/// Executes `plan` against `catalog`; returns the materialized result.
/// Every execution feeds the process metrics (rows scanned from extents,
/// rows emitted, latency). With a non-null `trace`, a child span per plan
/// operator is attached under it — the span tree mirrors the plan shape,
/// each node carrying an out_rows attribute (view scans also name their
/// view). Tracing belongs to one query on one thread.
Result<Table> Execute(const PlanNode& plan, const Catalog& catalog,
                      TraceSpan* trace = nullptr);

}  // namespace svx

#endif  // SVX_ALGEBRA_EXECUTOR_H_
