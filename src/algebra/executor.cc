#include "src/algebra/executor.h"

#include <functional>
#include <unordered_map>
#include <utility>

#include "src/algebra/columnar.h"
#include "src/observability/metrics.h"
#include "src/observability/trace.h"
#include "src/util/timer.h"

namespace svx {

namespace {

// ---- Referenced-column analysis for columnar scans -------------------------
//
// A top-down pass over the plan marks, per view scan, which output columns
// any operator above actually reads; the scan then decodes only those
// chunks. The analysis is conservative about multiplicity: every column
// that drives row counts or matching (join keys, selection columns, unnest
// groups, navigation/derivation inputs, group keys feeding a needed nested
// column) stays needed. A column can only become unneeded below an operator
// that deduplicates its output on the remaining visible columns (π, ∪, the
// unused nested side of ⋈ⁿ/GroupBy), so rows that collapse because a hidden
// column was ⊥-filled are exactly duplicates the reference execution also
// collapses before any result the root can observe — the root itself is
// always all-needed.

using ScanUseMap = std::unordered_map<const PlanNode*, std::vector<bool>>;

void MarkScanUse(const PlanNode& p, std::vector<bool> needed,
                 ScanUseMap* out) {
  SVX_DCHECK(static_cast<int32_t>(needed.size()) == p.schema.size());
  switch (p.kind) {
    case PlanKind::kViewScan: {
      auto [it, inserted] = out->emplace(&p, std::move(needed));
      if (!inserted) {
        for (size_t c = 0; c < it->second.size(); ++c) {
          it->second[c] = it->second[c] || needed[c];
        }
      }
      return;
    }
    case PlanKind::kIdEqJoin:
    case PlanKind::kStructJoin: {
      const PlanNode& l = *p.children[0];
      const PlanNode& r = *p.children[1];
      size_t nl = static_cast<size_t>(l.schema.size());
      std::vector<bool> ln(needed.begin(),
                           needed.begin() + static_cast<ptrdiff_t>(nl));
      ln[static_cast<size_t>(p.left_col)] = true;
      if (p.kind == PlanKind::kStructJoin && p.nested_join) {
        // Output = left columns + one nested column of right rows. The right
        // side's values only surface through that nested column; its key is
        // still needed to size the groups the left rows carry.
        std::vector<bool> rn(static_cast<size_t>(r.schema.size()),
                             needed[nl]);
        rn[static_cast<size_t>(p.right_col)] = true;
        MarkScanUse(l, std::move(ln), out);
        MarkScanUse(r, std::move(rn), out);
        return;
      }
      std::vector<bool> rn(needed.begin() + static_cast<ptrdiff_t>(nl),
                           needed.end());
      rn[static_cast<size_t>(p.right_col)] = true;
      MarkScanUse(l, std::move(ln), out);
      MarkScanUse(r, std::move(rn), out);
      return;
    }
    case PlanKind::kSelect:
      needed[static_cast<size_t>(p.select_col)] = true;
      MarkScanUse(*p.children[0], std::move(needed), out);
      return;
    case PlanKind::kProject: {
      std::vector<bool> in(
          static_cast<size_t>(p.children[0]->schema.size()), false);
      for (size_t k = 0; k < p.project_cols.size(); ++k) {
        if (needed[k]) in[static_cast<size_t>(p.project_cols[k])] = true;
      }
      MarkScanUse(*p.children[0], std::move(in), out);
      return;
    }
    case PlanKind::kUnion:
      for (const PlanPtr& c : p.children) MarkScanUse(*c, needed, out);
      return;
    case PlanKind::kUnnest: {
      const PlanNode& c = *p.children[0];
      int32_t n_in = c.schema.size();
      int32_t gw = p.schema.size() - n_in + 1;  // columns replacing the col
      std::vector<bool> in(static_cast<size_t>(n_in), false);
      for (int32_t ci = 0; ci < n_in; ++ci) {
        if (ci < p.unnest_col) {
          in[static_cast<size_t>(ci)] = needed[static_cast<size_t>(ci)];
        } else if (ci == p.unnest_col) {
          in[static_cast<size_t>(ci)] = true;  // group sizes = multiplicity
        } else {
          in[static_cast<size_t>(ci)] =
              needed[static_cast<size_t>(ci + gw - 1)];
        }
      }
      MarkScanUse(c, std::move(in), out);
      return;
    }
    case PlanKind::kGroupBy: {
      const PlanNode& c = *p.children[0];
      // When the nested column is read, every input column feeds it (group
      // contents are the non-key columns); otherwise only the needed keys.
      std::vector<bool> in(static_cast<size_t>(c.schema.size()),
                           needed.back());
      for (size_t k = 0; k < p.group_key_cols.size(); ++k) {
        if (needed[k]) in[static_cast<size_t>(p.group_key_cols[k])] = true;
      }
      MarkScanUse(c, std::move(in), out);
      return;
    }
    case PlanKind::kNavigate: {
      const PlanNode& c = *p.children[0];
      std::vector<bool> in(
          needed.begin(),
          needed.begin() + static_cast<ptrdiff_t>(c.schema.size()));
      in[static_cast<size_t>(p.navigate_col)] = true;
      MarkScanUse(c, std::move(in), out);
      return;
    }
    case PlanKind::kDeriveParent: {
      const PlanNode& c = *p.children[0];
      std::vector<bool> in(
          needed.begin(),
          needed.begin() + static_cast<ptrdiff_t>(c.schema.size()));
      in[static_cast<size_t>(p.derive_col)] = true;
      MarkScanUse(c, std::move(in), out);
      return;
    }
  }
}

Tuple Concat(const Tuple& a, const Tuple& b) {
  Tuple out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

struct OrdPathKeyHash {
  size_t operator()(const OrdPath& p) const { return p.Hash(); }
};

using IdIndex =
    std::unordered_map<OrdPath, std::vector<int64_t>, OrdPathKeyHash>;

IdIndex BuildIdIndex(const Table& t, int32_t col) {
  IdIndex index;
  for (int64_t i = 0; i < t.NumRows(); ++i) {
    const Value& v = t.row(i)[static_cast<size_t>(col)];
    if (v.IsNull()) continue;  // ⊥ never joins
    index[v.AsId()].push_back(i);
  }
  return index;
}

Result<Table> ExecIdEqJoin(const PlanNode& p, Table left, Table right) {
  Table out(p.schema);
  IdIndex right_index = BuildIdIndex(right, p.right_col);
  for (int64_t i = 0; i < left.NumRows(); ++i) {
    const Value& v = left.row(i)[static_cast<size_t>(p.left_col)];
    if (v.IsNull()) continue;
    auto it = right_index.find(v.AsId());
    if (it == right_index.end()) continue;
    for (int64_t j : it->second) {
      out.AddRow(Concat(left.row(i), right.row(j)));
    }
  }
  return out;
}

/// Matches of `id` against left ids under the structural axis: the parent
/// prefix for ≺, every strict ancestor prefix for ≺≺.
void ForEachAncestorMatch(const IdIndex& left_index, const OrdPath& id,
                          StructAxis axis,
                          const std::function<void(int64_t)>& fn) {
  if (axis == StructAxis::kParent) {
    OrdPath parent = id.Parent();
    if (!parent.IsValid()) return;
    auto it = left_index.find(parent);
    if (it == left_index.end()) return;
    for (int64_t i : it->second) fn(i);
    return;
  }
  for (OrdPath a = id.Parent(); a.IsValid(); a = a.Parent()) {
    auto it = left_index.find(a);
    if (it == left_index.end()) continue;
    for (int64_t i : it->second) fn(i);
  }
}

Result<Table> ExecStructJoin(const PlanNode& p, Table left, Table right) {
  Table out(p.schema);
  IdIndex left_index = BuildIdIndex(left, p.left_col);

  if (!p.nested_join) {
    for (int64_t j = 0; j < right.NumRows(); ++j) {
      const Value& v = right.row(j)[static_cast<size_t>(p.right_col)];
      if (v.IsNull()) continue;
      ForEachAncestorMatch(left_index, v.AsId(), p.struct_axis,
                           [&](int64_t i) {
                             out.AddRow(Concat(left.row(i), right.row(j)));
                           });
    }
    return out;
  }

  // Nested structural join (§4.6): group right matches per left row; empty
  // groups are kept (Figure 12 shows empty tables).
  std::vector<std::vector<int64_t>> groups(
      static_cast<size_t>(left.NumRows()));
  for (int64_t j = 0; j < right.NumRows(); ++j) {
    const Value& v = right.row(j)[static_cast<size_t>(p.right_col)];
    if (v.IsNull()) continue;
    ForEachAncestorMatch(left_index, v.AsId(), p.struct_axis, [&](int64_t i) {
      groups[static_cast<size_t>(i)].push_back(j);
    });
  }
  std::shared_ptr<const Schema> nested_schema =
      p.schema.column(p.schema.size() - 1).nested;
  for (int64_t i = 0; i < left.NumRows(); ++i) {
    auto nested = std::make_shared<Table>(*nested_schema);
    for (int64_t j : groups[static_cast<size_t>(i)]) {
      nested->AddRow(right.row(j));
    }
    Tuple row = left.row(i);
    row.emplace_back(TablePtr(nested));
    out.AddRow(std::move(row));
  }
  return out;
}

bool SelectAccepts(const PlanNode& p, const Tuple& row) {
  const Value& v = row[static_cast<size_t>(p.select_col)];
  switch (p.select_kind) {
    case SelectKind::kNonNull:
      return !v.IsNull();
    case SelectKind::kIsNull:
      return v.IsNull();
    case SelectKind::kLabelEq:
      return !v.IsNull() && v.IsString() && v.AsString() == p.select_label;
    case SelectKind::kValuePred:
      if (p.select_pred.IsTrue()) return true;
      return !v.IsNull() && v.IsString() &&
             p.select_pred.ContainsValue(v.AsString());
  }
  return false;
}

Result<Table> ExecUnnest(const PlanNode& p, Table in) {
  Table out(p.schema);
  int32_t group_width =
      p.schema.size() - in.schema().size() + 1;  // columns replacing the col
  for (int64_t i = 0; i < in.NumRows(); ++i) {
    const Tuple& row = in.row(i);
    const Value& nested = row[static_cast<size_t>(p.unnest_col)];
    bool empty = nested.IsNull() || nested.AsTable().NumRows() == 0;
    if (empty) {
      if (!p.unnest_outer) continue;  // NRA unnest drops the tuple
      Tuple padded;
      padded.reserve(static_cast<size_t>(p.schema.size()));
      for (size_t c = 0; c < row.size(); ++c) {
        if (static_cast<int32_t>(c) == p.unnest_col) {
          for (int32_t e = 0; e < group_width; ++e) padded.emplace_back();
        } else {
          padded.push_back(row[c]);
        }
      }
      out.AddRow(std::move(padded));
      continue;
    }
    const Table& group = nested.AsTable();
    for (int64_t g = 0; g < group.NumRows(); ++g) {
      Tuple expanded;
      expanded.reserve(static_cast<size_t>(p.schema.size()));
      for (size_t c = 0; c < row.size(); ++c) {
        if (static_cast<int32_t>(c) == p.unnest_col) {
          for (const Value& v : group.row(g)) expanded.push_back(v);
        } else {
          expanded.push_back(row[c]);
        }
      }
      out.AddRow(std::move(expanded));
    }
  }
  return out;
}

Result<Table> ExecGroupBy(const PlanNode& p, Table in) {
  Table out(p.schema);
  const Schema& in_schema = in.schema();
  std::vector<bool> is_key(static_cast<size_t>(in_schema.size()), false);
  for (int32_t k : p.group_key_cols) is_key[static_cast<size_t>(k)] = true;

  struct Group {
    Tuple key;
    std::shared_ptr<Table> rows;
  };
  std::vector<Group> groups;
  std::unordered_map<size_t, std::vector<size_t>> by_hash;
  std::shared_ptr<const Schema> nested_schema =
      p.schema.column(p.schema.size() - 1).nested;

  for (int64_t i = 0; i < in.NumRows(); ++i) {
    const Tuple& row = in.row(i);
    Tuple key;
    Tuple rest;
    for (size_t c = 0; c < row.size(); ++c) {
      if (is_key[c]) continue;
      rest.push_back(row[c]);
    }
    for (int32_t k : p.group_key_cols) key.push_back(row[static_cast<size_t>(k)]);

    size_t h = TupleHash(key);
    size_t group_idx = SIZE_MAX;
    auto it = by_hash.find(h);
    if (it != by_hash.end()) {
      for (size_t g : it->second) {
        if (groups[g].key == key) {
          group_idx = g;
          break;
        }
      }
    }
    if (group_idx == SIZE_MAX) {
      group_idx = groups.size();
      groups.push_back({key, std::make_shared<Table>(*nested_schema)});
      by_hash[h].push_back(group_idx);
    }
    // Rows whose non-key part is all-⊥ contribute an empty group entry
    // (the optional/nested combination of Figure 12).
    bool all_null = true;
    for (const Value& v : rest) all_null = all_null && v.IsNull();
    if (!all_null) groups[group_idx].rows->AddRow(std::move(rest));
  }

  for (Group& g : groups) {
    g.rows->Deduplicate();
    Tuple row = std::move(g.key);
    row.emplace_back(TablePtr(g.rows));
    out.AddRow(std::move(row));
  }
  return out;
}

void CollectNavMatches(const Document& doc, NodeIndex from,
                       const std::vector<NavStep>& steps, size_t step_idx,
                       std::vector<NodeIndex>* out) {
  if (step_idx == steps.size()) {
    out->push_back(from);
    return;
  }
  const NavStep& s = steps[step_idx];
  if (s.axis == Axis::kChild) {
    for (NodeIndex c = doc.first_child(from); c != kInvalidNode;
         c = doc.next_sibling(c)) {
      if (s.label == "*" || doc.label(c) == s.label) {
        CollectNavMatches(doc, c, steps, step_idx + 1, out);
      }
    }
  } else {
    for (NodeIndex c = from + 1; c < doc.subtree_end(from); ++c) {
      if (s.label == "*" || doc.label(c) == s.label) {
        CollectNavMatches(doc, c, steps, step_idx + 1, out);
      }
    }
  }
}

void AppendAttrValues(const Document& doc, NodeIndex n, uint8_t attrs,
                      Tuple* row) {
  if (attrs & kAttrId) row->emplace_back(doc.ord_path(n));
  if (attrs & kAttrLabel) row->emplace_back(doc.label(n));
  if (attrs & kAttrValue) {
    if (doc.has_value(n)) {
      row->emplace_back(doc.value(n));
    } else {
      row->emplace_back();
    }
  }
  if (attrs & kAttrContent) row->emplace_back(NodeRef{&doc, n});
}

Result<Table> ExecNavigate(const PlanNode& p, Table in) {
  Table out(p.schema);
  int32_t extra = p.schema.size() - in.schema().size();
  for (int64_t i = 0; i < in.NumRows(); ++i) {
    const Tuple& row = in.row(i);
    const Value& v = row[static_cast<size_t>(p.navigate_col)];
    std::vector<NodeIndex> matches;
    const Document* doc = nullptr;
    if (!v.IsNull()) {
      const NodeRef& ref = v.AsContent();
      doc = ref.doc;
      CollectNavMatches(*doc, ref.node, p.navigate_steps, 0, &matches);
    }
    if (matches.empty()) {
      // Optional navigation semantics: keep the row, pad with ⊥.
      Tuple padded = row;
      for (int32_t e = 0; e < extra; ++e) padded.emplace_back();
      out.AddRow(std::move(padded));
      continue;
    }
    for (NodeIndex m : matches) {
      Tuple expanded = row;
      AppendAttrValues(*doc, m, p.navigate_attrs, &expanded);
      out.AddRow(std::move(expanded));
    }
  }
  out.Deduplicate();
  return out;
}

Result<Table> ExecScan(const PlanNode& plan, const Catalog::Entry& entry,
                       const ScanUseMap& scan_use, int64_t* rows_scanned) {
  if (entry.table != nullptr) {
    *rows_scanned += entry.table->NumRows();
    Table out(plan.schema);
    for (const Tuple& row : entry.table->rows()) out.AddRow(row);
    return out;
  }
  const ColumnarSource& src = entry.columnar;
  if (src.extent == nullptr) {
    return Status::NotFound("view not materialized: " + plan.view_name);
  }
  if (src.resident != nullptr) {
    if (TablePtr t = src.resident()) {
      *rows_scanned += t->NumRows();
      Table out(plan.schema);
      for (const Tuple& row : t->rows()) out.AddRow(row);
      return out;
    }
  }
  // Cold scan: decode only the columns the plan references.
  auto it = scan_use.find(&plan);
  bool full = it == scan_use.end();
  if (!full) {
    full = true;
    for (bool used : it->second) full = full && used;
  }
  Timer timer;
  Result<Table> out = full ? src.extent->Decode(src.doc)
                           : src.extent->DecodeColumns(it->second, src.doc);
  if (!out.ok()) return out;
  int64_t us = static_cast<int64_t>(timer.ElapsedMicros());
  *rows_scanned += out->NumRows();
  TablePtr cacheable;
  if (full) {
    // A fully decoded table is worth caching; the owner (the residency
    // slot) decides and first-wins keeps earlier references stable.
    auto shared = std::make_shared<const Table>(std::move(*out));
    if (src.loaded != nullptr) src.loaded(shared, us);
    Table copy(plan.schema);
    for (const Tuple& row : shared->rows()) copy.AddRow(row);
    return copy;
  }
  if (src.loaded != nullptr) src.loaded(nullptr, us);
  return out;
}

Result<Table> ExecNode(const PlanNode& plan, const Catalog& catalog,
                       const ScanUseMap& scan_use, TraceSpan* parent,
                       int64_t* rows_scanned) {
  // Span names reuse the plan printer's operator vocabulary (plan.h), so a
  // trace tree reads like the compact plan form.
  ScopedSpan span(parent, PlanKindName(plan.kind));
  auto exec = [&]() -> Result<Table> {
    switch (plan.kind) {
      case PlanKind::kViewScan: {
        const Catalog::Entry* entry = catalog.FindEntry(plan.view_name);
        if (entry == nullptr) {
          return Status::NotFound("view not materialized: " + plan.view_name);
        }
        span.Attr("view", plan.view_name);
        return ExecScan(plan, *entry, scan_use, rows_scanned);
      }
      case PlanKind::kIdEqJoin: {
        Result<Table> l =
            ExecNode(*plan.children[0], catalog, scan_use, span.get(), rows_scanned);
        if (!l.ok()) return l;
        Result<Table> r =
            ExecNode(*plan.children[1], catalog, scan_use, span.get(), rows_scanned);
        if (!r.ok()) return r;
        return ExecIdEqJoin(plan, std::move(*l), std::move(*r));
      }
      case PlanKind::kStructJoin: {
        Result<Table> l =
            ExecNode(*plan.children[0], catalog, scan_use, span.get(), rows_scanned);
        if (!l.ok()) return l;
        Result<Table> r =
            ExecNode(*plan.children[1], catalog, scan_use, span.get(), rows_scanned);
        if (!r.ok()) return r;
        return ExecStructJoin(plan, std::move(*l), std::move(*r));
      }
      case PlanKind::kSelect: {
        Result<Table> in =
            ExecNode(*plan.children[0], catalog, scan_use, span.get(), rows_scanned);
        if (!in.ok()) return in;
        Table out(plan.schema);
        for (const Tuple& row : in->rows()) {
          if (SelectAccepts(plan, row)) out.AddRow(row);
        }
        return out;
      }
      case PlanKind::kProject: {
        Result<Table> in =
            ExecNode(*plan.children[0], catalog, scan_use, span.get(), rows_scanned);
        if (!in.ok()) return in;
        Table out(plan.schema);
        for (const Tuple& row : in->rows()) {
          Tuple projected;
          projected.reserve(plan.project_cols.size());
          for (int32_t c : plan.project_cols) {
            projected.push_back(row[static_cast<size_t>(c)]);
          }
          out.AddRow(std::move(projected));
        }
        out.Deduplicate();
        return out;
      }
      case PlanKind::kUnion: {
        Table out(plan.schema);
        for (const PlanPtr& c : plan.children) {
          Result<Table> in = ExecNode(*c, catalog, scan_use, span.get(), rows_scanned);
          if (!in.ok()) return in;
          for (const Tuple& row : in->rows()) out.AddRow(row);
        }
        out.Deduplicate();
        return out;
      }
      case PlanKind::kUnnest: {
        Result<Table> in =
            ExecNode(*plan.children[0], catalog, scan_use, span.get(), rows_scanned);
        if (!in.ok()) return in;
        return ExecUnnest(plan, std::move(*in));
      }
      case PlanKind::kGroupBy: {
        Result<Table> in =
            ExecNode(*plan.children[0], catalog, scan_use, span.get(), rows_scanned);
        if (!in.ok()) return in;
        return ExecGroupBy(plan, std::move(*in));
      }
      case PlanKind::kNavigate: {
        Result<Table> in =
            ExecNode(*plan.children[0], catalog, scan_use, span.get(), rows_scanned);
        if (!in.ok()) return in;
        return ExecNavigate(plan, std::move(*in));
      }
      case PlanKind::kDeriveParent: {
        Result<Table> in =
            ExecNode(*plan.children[0], catalog, scan_use, span.get(), rows_scanned);
        if (!in.ok()) return in;
        Table out(plan.schema);
        for (const Tuple& row : in->rows()) {
          Tuple expanded = row;
          const Value& v = row[static_cast<size_t>(plan.derive_col)];
          if (v.IsNull()) {
            expanded.emplace_back();
          } else {
            OrdPath anc = v.AsId().Ancestor(plan.derive_steps);
            if (anc.IsValid()) {
              expanded.emplace_back(std::move(anc));
            } else {
              expanded.emplace_back();
            }
          }
          out.AddRow(std::move(expanded));
        }
        return out;
      }
    }
    return Status::Internal("unknown plan kind");
  };
  Result<Table> out = exec();
  if (out.ok()) span.Attr("out_rows", out->NumRows());
  return out;
}

}  // namespace

Result<Table> Execute(const PlanNode& plan, const Catalog& catalog,
                      TraceSpan* trace) {
  Timer timer;
  int64_t rows_scanned = 0;
  ScanUseMap scan_use;
  MarkScanUse(plan,
              std::vector<bool>(static_cast<size_t>(plan.schema.size()), true),
              &scan_use);
  Result<Table> out = ExecNode(plan, catalog, scan_use, trace, &rows_scanned);
  metrics::ExecutorRuns()->Add(1);
  metrics::ExecutorRowsScanned()->Add(rows_scanned);
  if (out.ok()) metrics::ExecutorRowsEmitted()->Add(out->NumRows());
  metrics::ExecutorLatencyUs()->Observe(
      static_cast<int64_t>(timer.ElapsedMicros()));
  return out;
}

}  // namespace svx
