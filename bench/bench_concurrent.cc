// Concurrent serving benchmark: N reader threads rewrite (through the
// snapshot's rewrite cache and shared view index) and execute XMark query
// patterns against catalog snapshots, first over an idle store, then while
// one writer thread applies a stream of subtree updates through
// ApplyUpdate (each publishing a successor epoch). Reports per-phase reader
// latency percentiles and throughput plus writer progress, and writes
// machine-readable BENCH_concurrent.json into the working directory.
//
// The acceptance gate (--max-ratio, default 2.0) fails the run when the
// contended median reader latency exceeds max-ratio × the idle median.
//
// With --shards=N (N > 1) the same workload runs against a ShardedCatalog
// with async writer lanes: readers scatter-gather through ShardedSnapshot,
// the writer enqueues bursts that the lanes coalesce, and an additional
// gate fails the run unless the burst publishes at most half as many
// epochs as deltas applied.
//
//   $ ./build/bench_concurrent [scale] [phase-ms] [readers]
//         [--writer-interval-ms N] [--max-ratio R] [--shards=N]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_metrics.h"
#include "src/algebra/executor.h"
#include "src/pattern/pattern_parser.h"
#include "src/rewriting/rewriter.h"
#include "src/summary/summary_builder.h"
#include "src/util/json_writer.h"
#include "src/util/rng.h"
#include "src/util/strings.h"
#include "src/util/timer.h"
#include "src/viewstore/sharded_catalog.h"
#include "src/viewstore/view_catalog.h"
#include "src/workload/xmark.h"
#include "src/workload/xmark_queries.h"
#include "src/xml/builder.h"
#include "src/xml/update.h"

namespace svx {
namespace {

std::unique_ptr<Document> MustParseTree(const char* text) {
  Result<std::unique_ptr<Document>> r = ParseTreeNotation(text);
  if (!r.ok()) {
    std::fprintf(stderr, "bad tree: %s\n", r.status().ToString().c_str());
    std::abort();
  }
  return std::move(r).value();
}

/// The stored view set: the maintenance bench's five views — small enough
/// that a maintenance pass is bounded, expressive enough that the XMark
/// queries find rewritings.
struct ViewSpec {
  const char* name;
  const char* pattern;
};
const ViewSpec kViews[] = {
    {"item_names", "site(//item{id}(/name{id,v}))"},
    {"item_keywords_opt", "site(//item{id}(?//keyword{v}))"},
    {"item_keywords_nested", "site(//item{id}(n//keyword{id,v}))"},
    {"person_names", "site(//person{id}(/name{id,v}))"},
    {"auction_bidders", "site(//open_auction{id}(//bidder{id}(/increase{v})))"},
};

/// The reader workload: query patterns served by the view set above.
const char* kQueries[] = {
    "site(//item{id}(/name{v}))",
    "site(//item{id}(/name{id,v} ?//keyword{v}))",
    "site(//person{id}(/name{v}))",
    "site(//open_auction{id}(//bidder{id}(/increase{v})))",
    "site(//item{id}(n//keyword{id,v}))",
};

struct PhaseStats {
  std::vector<double> latencies_ms;  // per reader op, merged
  double wall_ms = 0;
  long long ops = 0;
  long long rewrite_cache_hits = 0;
  long long failures = 0;
};

double Percentile(std::vector<double>* v, double p) {
  if (v->empty()) return 0;
  std::sort(v->begin(), v->end());
  size_t i = static_cast<size_t>(p * static_cast<double>(v->size() - 1));
  return (*v)[i];
}

/// One reader loop: acquire a snapshot per op, rewrite through its caches,
/// execute the cheapest plan against its extents.
void ReaderLoop(const ViewCatalog& catalog,
                const std::vector<Pattern>& queries,
                const std::atomic<bool>& stop, size_t reader_id,
                PhaseStats* out) {
  size_t at = reader_id;  // stagger the query mix across readers
  while (!stop.load(std::memory_order_relaxed)) {
    Timer op_timer;
    std::shared_ptr<const CatalogSnapshot> snap = catalog.Snapshot();
    RewriterOptions opts;
    opts.max_results = 1;
    opts.cost_model = &snap->cost_model();
    opts.memo = snap->containment_memo();
    std::shared_ptr<const ViewIndex> index =
        snap->ViewIndexFor(*snap->summary(), opts.expansion);
    opts.shared_view_index = index.get();
    Rewriter rewriter(*snap->summary(), opts);
    for (const auto& v : snap->views()) rewriter.AddView(v->def);
    const Pattern& q = queries[at++ % queries.size()];
    RewriteStats stats;
    Result<std::vector<Rewriting>> rws =
        CachedRewrite(snap->rewrite_cache(), &rewriter, q, &stats);
    bool ok = rws.ok() && !rws->empty();
    if (!ok) {
      std::fprintf(stderr, "reader: epoch %llu query %zu: %s\n",
                   static_cast<unsigned long long>(snap->epoch()),
                   (at - 1) % queries.size(),
                   rws.ok() ? "no rewriting" : rws.status().ToString().c_str());
    }
    if (ok) {
      Result<Table> rows =
          Execute(*rws->front().plan, snap->ExecutorCatalog());
      ok = rows.ok();
      if (!ok) {
        std::fprintf(stderr, "reader: epoch %llu query %zu exec: %s\n",
                     static_cast<unsigned long long>(snap->epoch()),
                     (at - 1) % queries.size(),
                     rows.status().ToString().c_str());
      }
    }
    out->latencies_ms.push_back(op_timer.ElapsedMillis());
    ++out->ops;
    if (stats.rewrite_cache_hits > 0) ++out->rewrite_cache_hits;
    if (!ok) ++out->failures;
  }
}

/// One step of the writer's update stream: a new item inserted among the
/// existing items (half careted mid-sibling, half appended), or — once the
/// document has grown past its initial size — an item subtree deleted to
/// keep it bounded.
Result<UpdateResult> MakeItemUpdate(const Document& doc, int32_t initial_size,
                                    Rng* rng) {
  std::vector<NodeIndex> items;
  for (NodeIndex n = 0; n < doc.size(); ++n) {
    if (doc.label(n) == "item") items.push_back(n);
  }
  if (items.empty()) return Status::NotFound("no items to anchor on");
  NodeIndex anchor = items[static_cast<size_t>(
      rng->Uniform(0, static_cast<int64_t>(items.size()) - 1))];
  if (doc.size() > initial_size && rng->Bernoulli(0.5)) {
    return DeleteSubtree(doc, doc.ord_path(anchor));
  }
  std::unique_ptr<Document> sub = MustParseTree(
      "item(name=fresh description(text=t keyword=new) payment=cash)");
  // Half the inserts land mid-sibling through careted ids, half append.
  OrdPath parent = doc.ord_path(doc.parent(anchor));
  if (rng->Bernoulli(0.5)) {
    OrdPath before = doc.ord_path(anchor);
    return InsertSubtree(doc, parent, *sub, &before);
  }
  return InsertSubtree(doc, parent, *sub);
}

/// The writer loop: a shape-stable randomized update stream — new items
/// inserted among the existing items (half careted mid-sibling, half
/// appended), item subtrees deleted to keep the document bounded — one
/// successor epoch per update, `interval_ms` idle between updates
/// (0 = continuous). Shape stability keeps the summary serving the same
/// rewritings while extents churn, which is the read-mostly regime this
/// bench measures; it is not a correctness requirement.
void WriterLoop(ViewCatalog* catalog, std::shared_ptr<Document> doc,
                const std::atomic<bool>& stop, double interval_ms,
                long long* updates, MaintenanceStats* total) {
  Rng rng(4242);
  const int32_t initial_size = doc->size();
  while (!stop.load(std::memory_order_relaxed)) {
    Result<UpdateResult> up = MakeItemUpdate(*doc, initial_size, &rng);
    if (!up.ok()) continue;
    std::shared_ptr<Document> next_doc(std::move(up->doc));
    std::shared_ptr<Summary> next_summary(
        SummaryBuilder::Build(next_doc.get()));
    MaintenanceStats ms;
    Status s = catalog->ApplyUpdate(up->delta, next_doc, next_summary, &ms);
    if (!s.ok()) {
      std::fprintf(stderr, "writer: %s\n", s.ToString().c_str());
      return;
    }
    doc = std::move(next_doc);
    ++*updates;
    total->views_touched += ms.views_touched;
    total->views_rebuilt += ms.views_rebuilt;
    total->views_shared += ms.views_shared;
    total->tuples_inserted += ms.tuples_inserted;
    total->tuples_deleted += ms.tuples_deleted;
    if (interval_ms > 0) {
      Timer t;
      while (!stop.load(std::memory_order_relaxed) &&
             t.ElapsedMillis() < interval_ms) {
        std::this_thread::yield();
      }
    }
  }
}

PhaseStats RunPhase(const ViewCatalog& catalog,
                    const std::vector<Pattern>& queries, int readers,
                    double phase_ms, ViewCatalog* writer_catalog,
                    std::shared_ptr<Document> writer_doc,
                    double writer_interval_ms, long long* writer_updates,
                    MaintenanceStats* writer_totals) {
  std::atomic<bool> stop{false};
  std::vector<PhaseStats> per_reader(static_cast<size_t>(readers));
  std::vector<std::thread> threads;
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back(ReaderLoop, std::cref(catalog), std::cref(queries),
                         std::cref(stop), static_cast<size_t>(r),
                         &per_reader[static_cast<size_t>(r)]);
  }
  std::thread writer;
  if (writer_catalog != nullptr) {
    writer = std::thread(WriterLoop, writer_catalog, std::move(writer_doc),
                         std::cref(stop), writer_interval_ms, writer_updates,
                         writer_totals);
  }
  Timer wall;
  while (wall.ElapsedMillis() < phase_ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  for (std::thread& t : threads) t.join();
  if (writer.joinable()) writer.join();

  PhaseStats merged;
  merged.wall_ms = wall.ElapsedMillis();
  for (PhaseStats& r : per_reader) {
    merged.ops += r.ops;
    merged.failures += r.failures;
    merged.rewrite_cache_hits += r.rewrite_cache_hits;
    merged.latencies_ms.insert(merged.latencies_ms.end(),
                               r.latencies_ms.begin(), r.latencies_ms.end());
  }
  return merged;
}

// ---------------------------------------------------------------------------
// Sharded mode (--shards=N): the same workload against a ShardedCatalog
// with async writer lanes. Readers scatter-gather through ShardedSnapshot;
// the writer enqueues precomputed bursts so the lanes coalesce them into
// few maintenance passes (the multi-writer batching this mode measures).
// ---------------------------------------------------------------------------

void ReaderLoopSharded(const ShardedCatalog& catalog,
                       const std::vector<Pattern>& queries,
                       const std::atomic<bool>& stop, size_t reader_id,
                       PhaseStats* out) {
  size_t at = reader_id;
  while (!stop.load(std::memory_order_relaxed)) {
    Timer op_timer;
    ShardedSnapshot snap = catalog.Snapshot();
    const Pattern& q = queries[at++ % queries.size()];
    Result<Table> rows = snap.ExecuteQuery(q);
    if (!rows.ok()) {
      std::fprintf(stderr, "reader: sharded query %zu: %s\n",
                   (at - 1) % queries.size(),
                   rows.status().ToString().c_str());
    }
    out->latencies_ms.push_back(op_timer.ElapsedMillis());
    ++out->ops;
    if (!rows.ok()) ++out->failures;
  }
}

/// Precomputes a chain of `burst` updates, enqueues them back-to-back (the
/// lanes see deep queues and drain them as coalesced batches), then
/// Flush()es before pacing — so epochs published per burst stays well under
/// the burst size.
void WriterLoopSharded(ShardedCatalog* catalog,
                       std::shared_ptr<const Document> doc,
                       const std::atomic<bool>& stop, double interval_ms,
                       int burst, long long* updates) {
  Rng rng(4242);
  const int32_t initial_size = doc->size();
  while (!stop.load(std::memory_order_relaxed)) {
    std::vector<std::shared_ptr<const Document>> docs;
    std::vector<std::shared_ptr<const Summary>> summaries;
    std::vector<DocumentDelta> deltas;
    const Document* cur = doc.get();
    for (int b = 0; b < burst; ++b) {
      Result<UpdateResult> up = MakeItemUpdate(*cur, initial_size, &rng);
      if (!up.ok()) continue;
      deltas.push_back(up->delta);
      std::shared_ptr<Document> next(std::move(up->doc));
      summaries.emplace_back(SummaryBuilder::Build(next.get()));
      docs.emplace_back(std::move(next));
      cur = docs.back().get();
    }
    for (size_t i = 0; i < deltas.size(); ++i) {
      Status s = catalog->ApplyUpdate(deltas[i], docs[i], summaries[i]);
      if (!s.ok()) {
        std::fprintf(stderr, "writer: %s\n", s.ToString().c_str());
        return;
      }
    }
    Status flushed = catalog->Flush();
    if (!flushed.ok()) {
      std::fprintf(stderr, "writer flush: %s\n", flushed.ToString().c_str());
      return;
    }
    *updates += static_cast<long long>(deltas.size());
    if (!docs.empty()) doc = docs.back();
    if (interval_ms > 0) {
      // Pace bursts so the offered write rate matches single-shard mode
      // (one update per interval): a burst of B every B intervals.
      Timer t;
      while (!stop.load(std::memory_order_relaxed) &&
             t.ElapsedMillis() < interval_ms * burst) {
        std::this_thread::yield();
      }
    }
  }
}

PhaseStats RunPhaseSharded(const ShardedCatalog& catalog,
                           const std::vector<Pattern>& queries, int readers,
                           double phase_ms, ShardedCatalog* writer_catalog,
                           std::shared_ptr<const Document> writer_doc,
                           double writer_interval_ms, int burst,
                           long long* writer_updates) {
  std::atomic<bool> stop{false};
  std::vector<PhaseStats> per_reader(static_cast<size_t>(readers));
  std::vector<std::thread> threads;
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back(ReaderLoopSharded, std::cref(catalog),
                         std::cref(queries), std::cref(stop),
                         static_cast<size_t>(r),
                         &per_reader[static_cast<size_t>(r)]);
  }
  std::thread writer;
  if (writer_catalog != nullptr) {
    writer = std::thread(WriterLoopSharded, writer_catalog,
                         std::move(writer_doc), std::cref(stop),
                         writer_interval_ms, burst, writer_updates);
  }
  Timer wall;
  while (wall.ElapsedMillis() < phase_ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  for (std::thread& t : threads) t.join();
  if (writer.joinable()) writer.join();

  PhaseStats merged;
  merged.wall_ms = wall.ElapsedMillis();
  for (PhaseStats& r : per_reader) {
    merged.ops += r.ops;
    merged.failures += r.failures;
    merged.latencies_ms.insert(merged.latencies_ms.end(),
                               r.latencies_ms.begin(), r.latencies_ms.end());
  }
  return merged;
}

int RunSharded(double scale, double phase_ms, int readers,
               double writer_interval_ms, double max_ratio, int shards) {
  std::printf("=== Concurrent serving: sharded catalog (%d shards) ===\n",
              shards);
  XmarkOptions opts;
  opts.scale = scale;
  std::shared_ptr<Document> doc(GenerateXmark(opts));
  std::shared_ptr<Summary> summary(SummaryBuilder::Build(doc.get()));

  ShardedCatalogOptions copts;
  copts.num_shards = shards;
  copts.async = true;  // writer lanes: the batching under test
  Result<std::unique_ptr<ShardedCatalog>> catalog =
      ShardedCatalog::Create(copts, doc, summary);
  if (!catalog.ok()) {
    std::fprintf(stderr, "create: %s\n", catalog.status().ToString().c_str());
    return 1;
  }
  for (const ViewSpec& v : kViews) {
    Result<Pattern> p = ParsePattern(v.pattern);
    if (!p.ok()) {
      std::fprintf(stderr, "bad view: %s\n", v.pattern);
      return 1;
    }
    Status s = (*catalog)->Materialize({v.name, std::move(*p)}, *doc);
    if (!s.ok()) {
      std::fprintf(stderr, "materialize: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::vector<Pattern> queries;
  for (const char* q : kQueries) {
    Result<Pattern> p = ParsePattern(q);
    if (!p.ok()) {
      std::fprintf(stderr, "bad query: %s\n", q);
      return 1;
    }
    queries.push_back(std::move(*p));
  }
  const int kBurst = 8;
  std::printf(
      "scale %.2f: %d nodes, %zu views, %d shards (%d effective), "
      "%d readers, %.0f ms/phase, writer burst %d every %.0f ms\n",
      scale, doc->size(), std::size(kViews), shards,
      (*catalog)->num_shards(), readers, phase_ms, kBurst,
      writer_interval_ms);

  // ---- Phase 1: idle store. ----
  PhaseStats idle = RunPhaseSharded(**catalog, queries, readers, phase_ms,
                                    nullptr, nullptr, 0, kBurst, nullptr);

  // ---- Phase 2: same readers under bursting writer lanes. ----
  long long writer_updates = 0;
  uint64_t epochs_before = (*catalog)->Snapshot().EpochSum();
  PhaseStats contended =
      RunPhaseSharded(**catalog, queries, readers, phase_ms, catalog->get(),
                      doc, writer_interval_ms, kBurst, &writer_updates);
  uint64_t epochs_after = (*catalog)->Snapshot().EpochSum();
  uint64_t epochs_published = epochs_after - epochs_before;

  double idle_p50 = Percentile(&idle.latencies_ms, 0.5);
  double idle_p95 = Percentile(&idle.latencies_ms, 0.95);
  double cont_p50 = Percentile(&contended.latencies_ms, 0.5);
  double cont_p95 = Percentile(&contended.latencies_ms, 0.95);
  double ratio = idle_p50 > 0 ? cont_p50 / idle_p50 : 0;

  std::printf("\n%-12s %10s %10s %10s %12s\n", "phase", "ops", "p50(ms)",
              "p95(ms)", "ops/sec");
  auto report = [](const char* name, const PhaseStats& ph, double p50,
                   double p95) {
    std::printf("%-12s %10lld %10.3f %10.3f %12.1f\n", name, ph.ops, p50,
                p95, ph.ops / (ph.wall_ms / 1000.0));
  };
  report("idle", idle, idle_p50, idle_p95);
  report("contended", contended, cont_p50, cont_p95);
  std::printf("writer: %lld deltas applied, %llu epochs published "
              "(coalescing %.1fx)\n",
              writer_updates,
              static_cast<unsigned long long>(epochs_published),
              epochs_published > 0
                  ? static_cast<double>(writer_updates) /
                        static_cast<double>(epochs_published)
                  : 0.0);
  std::printf("contended/idle p50 ratio: %.2f (gate %.2f)\n", ratio,
              max_ratio);

  JsonWriter w;
  w.BeginObject();
  w.KV("scale", scale);
  w.KV("shards", static_cast<int64_t>((*catalog)->num_shards()));
  w.KV("readers", static_cast<int64_t>(readers));
  w.KV("phase_ms", phase_ms);
  w.KV("writer_interval_ms", writer_interval_ms);
  w.KV("burst", static_cast<int64_t>(kBurst));
  auto phase_json = [](JsonWriter* jw, const PhaseStats& ph, double p50,
                       double p95) {
    jw->BeginObject();
    jw->KV("ops", static_cast<int64_t>(ph.ops));
    jw->KV("p50_ms", p50);
    jw->KV("p95_ms", p95);
    jw->EndObject();
  };
  w.Key("idle");
  phase_json(&w, idle, idle_p50, idle_p95);
  w.Key("contended");
  phase_json(&w, contended, cont_p50, cont_p95);
  w.KV("deltas_applied", static_cast<int64_t>(writer_updates));
  w.KV("epochs_published", epochs_published);
  w.KV("p50_ratio", ratio);
  w.KV("reader_failures",
       static_cast<int64_t>(idle.failures + contended.failures));
  w.EndObject();
  std::ofstream out("BENCH_concurrent_sharded.json", std::ios::trunc);
  out << w.str() << "\n";
  out.close();
  std::printf("\nwrote BENCH_concurrent_sharded.json\n");
  std::printf("catalog: %s\n", (*catalog)->DebugMetrics().c_str());
  EmitMetricsSnapshot("BENCH_concurrent_sharded_metrics.prom");

  if (idle.failures + contended.failures > 0) {
    std::fprintf(stderr, "FAIL: %lld reader ops failed\n",
                 idle.failures + contended.failures);
    return 1;
  }
  if (writer_updates == 0) {
    std::fprintf(stderr, "FAIL: writer made no progress\n");
    return 1;
  }
  // The batching gate: bursts must coalesce into at most half as many
  // epochs as deltas (only judged once the writer has seen a few bursts).
  if (writer_updates >= 2 * kBurst &&
      2 * epochs_published > static_cast<uint64_t>(writer_updates)) {
    std::fprintf(stderr,
                 "FAIL: %llu epochs for %lld deltas — lanes not batching\n",
                 static_cast<unsigned long long>(epochs_published),
                 writer_updates);
    return 1;
  }
  if (max_ratio > 0 && ratio > max_ratio) {
    std::fprintf(stderr, "FAIL: p50 ratio %.2f exceeds %.2f\n", ratio,
                 max_ratio);
    return 1;
  }
  return 0;
}

int Run(double scale, double phase_ms, int readers,
        double writer_interval_ms, double max_ratio) {
  std::printf("=== Concurrent serving: readers vs maintenance writer ===\n");
  XmarkOptions opts;
  opts.scale = scale;
  std::shared_ptr<Document> doc(GenerateXmark(opts));
  std::shared_ptr<Summary> summary(SummaryBuilder::Build(doc.get()));

  ViewCatalog catalog;  // in-memory: serving, not persistence, is measured
  for (const ViewSpec& v : kViews) {
    Result<Pattern> p = ParsePattern(v.pattern);
    if (!p.ok()) {
      std::fprintf(stderr, "bad view: %s\n", v.pattern);
      return 1;
    }
    Status s = catalog.Materialize({v.name, std::move(*p)}, *doc);
    if (!s.ok()) {
      std::fprintf(stderr, "materialize: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  catalog.BindDocument(doc, summary);
  std::vector<Pattern> queries;
  for (const char* q : kQueries) {
    Result<Pattern> p = ParsePattern(q);
    if (!p.ok()) {
      std::fprintf(stderr, "bad query: %s\n", q);
      return 1;
    }
    queries.push_back(std::move(*p));
  }
  std::printf(
      "scale %.2f: %d nodes, %zu views, %d readers, %.0f ms/phase, "
      "writer interval %.0f ms\n",
      scale, doc->size(), std::size(kViews), readers, phase_ms,
      writer_interval_ms);

  // ---- Phase 1: idle store. ----
  PhaseStats idle = RunPhase(catalog, queries, readers, phase_ms, nullptr,
                             nullptr, 0, nullptr, nullptr);

  // ---- Phase 2: same readers under a live maintenance writer. ----
  long long writer_updates = 0;
  MaintenanceStats writer_totals;
  uint64_t epoch_before = catalog.Snapshot()->epoch();
  PhaseStats contended =
      RunPhase(catalog, queries, readers, phase_ms, &catalog, doc,
               writer_interval_ms, &writer_updates, &writer_totals);
  uint64_t epoch_after = catalog.Snapshot()->epoch();

  double idle_p50 = Percentile(&idle.latencies_ms, 0.5);
  double idle_p95 = Percentile(&idle.latencies_ms, 0.95);
  double cont_p50 = Percentile(&contended.latencies_ms, 0.5);
  double cont_p95 = Percentile(&contended.latencies_ms, 0.95);
  double ratio = idle_p50 > 0 ? cont_p50 / idle_p50 : 0;

  std::printf("\n%-12s %10s %10s %10s %12s %10s\n", "phase", "ops", "p50(ms)",
              "p95(ms)", "ops/sec", "cache-hit%");
  auto report = [](const char* name, const PhaseStats& ph, double p50,
                   double p95) {
    std::printf("%-12s %10lld %10.3f %10.3f %12.1f %9.1f%%\n", name, ph.ops,
                p50, p95, ph.ops / (ph.wall_ms / 1000.0),
                ph.ops > 0 ? 100.0 * static_cast<double>(ph.rewrite_cache_hits)
                               / static_cast<double>(ph.ops)
                           : 0.0);
  };
  report("idle", idle, idle_p50, idle_p95);
  report("contended", contended, cont_p50, cont_p95);
  std::printf(
      "writer: %lld updates (%llu epochs), %d extents touched, "
      "%d rebuilt, +%lld/-%lld tuples\n",
      writer_updates,
      static_cast<unsigned long long>(epoch_after - epoch_before),
      writer_totals.views_touched, writer_totals.views_rebuilt,
      static_cast<long long>(writer_totals.tuples_inserted),
      static_cast<long long>(writer_totals.tuples_deleted));
  std::printf("contended/idle p50 ratio: %.2f (gate %.2f)\n", ratio,
              max_ratio);

  // ---- BENCH_concurrent.json ----
  // `instrumented` records whether this binary carries metrics so the CI
  // overhead gate can pair an instrumented and a disabled build's reports.
#ifdef SVX_METRICS_DISABLED
  const bool instrumented = false;
#else
  const bool instrumented = true;
#endif
  auto phase_json = [](JsonWriter* w, const PhaseStats& ph, double p50,
                       double p95) {
    w->BeginObject();
    w->KV("ops", static_cast<int64_t>(ph.ops));
    w->KV("p50_ms", p50);
    w->KV("p95_ms", p95);
    w->KV("cache_hits", static_cast<int64_t>(ph.rewrite_cache_hits));
    w->EndObject();
  };
  JsonWriter w;
  w.BeginObject();
  w.KV("scale", scale);
  w.KV("readers", static_cast<int64_t>(readers));
  w.KV("phase_ms", phase_ms);
  w.KV("writer_interval_ms", writer_interval_ms);
  w.KV("instrumented", instrumented);
  w.Key("idle");
  phase_json(&w, idle, idle_p50, idle_p95);
  w.Key("contended");
  phase_json(&w, contended, cont_p50, cont_p95);
  w.KV("writer_updates", static_cast<int64_t>(writer_updates));
  w.KV("views_shared", static_cast<int64_t>(writer_totals.views_shared));
  w.KV("epochs_published",
       static_cast<uint64_t>(epoch_after - epoch_before));
  w.KV("p50_ratio", ratio);
  w.KV("reader_failures",
       static_cast<int64_t>(idle.failures + contended.failures));
  w.EndObject();
  std::ofstream out("BENCH_concurrent.json", std::ios::trunc);
  out << w.str() << "\n";
  out.close();
  std::printf("\nwrote BENCH_concurrent.json\n");
  std::printf("catalog: %s\n", catalog.DebugMetrics().c_str());
  EmitMetricsSnapshot("BENCH_concurrent_metrics.prom");

  if (idle.failures + contended.failures > 0) {
    std::fprintf(stderr, "FAIL: %lld reader ops failed\n",
                 idle.failures + contended.failures);
    return 1;
  }
  if (writer_updates == 0) {
    std::fprintf(stderr, "FAIL: writer made no progress\n");
    return 1;
  }
  if (max_ratio > 0 && ratio > max_ratio) {
    std::fprintf(stderr, "FAIL: p50 ratio %.2f exceeds %.2f\n", ratio,
                 max_ratio);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace svx

int main(int argc, char** argv) {
  double scale = 0.5;
  double phase_ms = 3000;
  int readers = 2;
  double writer_interval_ms = 100;
  double max_ratio = 2.0;
  int shards = 1;
  int pos = 0;
  auto parse_shards = [&shards](const char* arg) {
    std::optional<int64_t> v = svx::ParseInt64(arg);
    if (!v.has_value() || *v < 1 || *v > 256) {
      std::fprintf(stderr, "bad shard count: %s\n", arg);
      return false;
    }
    shards = static_cast<int>(*v);
    return true;
  };
  auto parse = [](const char* arg, double* out) {
    std::optional<double> v = svx::ParseDouble(arg);
    if (!v.has_value()) {
      std::fprintf(stderr, "bad numeric argument: %s\n", arg);
      return false;
    }
    *out = *v;
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    bool ok = true;
    if (std::strcmp(argv[i], "--writer-interval-ms") == 0 && i + 1 < argc) {
      ok = parse(argv[++i], &writer_interval_ms);
    } else if (std::strcmp(argv[i], "--max-ratio") == 0 && i + 1 < argc) {
      ok = parse(argv[++i], &max_ratio);
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      ok = parse_shards(argv[i] + 9);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      ok = parse_shards(argv[++i]);
    } else if (pos == 0) {
      ok = parse(argv[i], &scale);
      ++pos;
    } else if (pos == 1) {
      ok = parse(argv[i], &phase_ms);
      ++pos;
    } else {
      std::optional<int64_t> v = svx::ParseInt64(argv[i]);
      if (v.has_value()) {
        readers = static_cast<int>(*v);
      } else {
        std::fprintf(stderr, "bad numeric argument: %s\n", argv[i]);
        ok = false;
      }
    }
    if (!ok) return 2;
  }
  if (shards > 1) {
    return svx::RunSharded(scale, phase_ms, readers, writer_interval_ms,
                           max_ratio, shards);
  }
  return svx::Run(scale, phase_ms, readers, writer_interval_ms, max_ratio);
}
