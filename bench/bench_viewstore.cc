// View-store end-to-end benchmark: materialize a view set over an XMark
// document into a persistent ViewCatalog, save and reload the store, then
// rewrite the 20 XMark query patterns with statistics-driven cost ranking
// and execute the cheapest plan against the store-backed extents.
//
// Reports a human-readable table and writes machine-readable
// BENCH_viewstore.json into the working directory.
//
//   $ ./build/bench_viewstore [scale] [--min-compression=X]
//
// --min-compression=X exits nonzero unless the columnar extents are at
// least X times smaller than the row-major serialization (the CI Release
// gate runs with X=2).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <string_view>

#include "bench/base_views.h"
#include "bench/bench_metrics.h"
#include "src/algebra/executor.h"
#include "src/rewriting/rewriter.h"
#include "src/summary/summary_builder.h"
#include "src/util/json_writer.h"
#include "src/util/strings.h"
#include "src/util/timer.h"
#include "src/viewstore/view_catalog.h"
#include "src/workload/xmark.h"
#include "src/workload/xmark_queries.h"

namespace svx {
namespace {

struct QueryRow {
  int number = 0;
  size_t rewritings = 0;
  double cheapest_cost = -1;
  double costliest_cost = -1;
  double rewrite_ms = 0;       // cold (rewrite-cache miss)
  double warm_rewrite_ms = 0;  // repeat, served from the rewrite cache
  size_t candidates_pruned = 0;
  size_t memo_hits = 0;
  size_t memo_misses = 0;
  bool rewrite_cache_hit = false;
  double exec_ms = -1;
  long long exec_rows = -1;
};

int Run(double scale, double min_compression) {
  namespace fs = std::filesystem;
  const std::string store_dir =
      (fs::temp_directory_path() / "svx_bench_viewstore").string();

  std::printf("=== View store: materialize / persist / cost-based rewrite "
              "===\n");
  XmarkOptions opts;
  opts.scale = scale;
  std::unique_ptr<Document> doc = GenerateXmark(opts);
  std::unique_ptr<Summary> summary = SummaryBuilder::Build(doc.get());
  std::vector<ViewDef> defs = BuildBaseTagViews(*summary);
  std::printf("scale %.1f: %d document nodes, %d summary paths, %zu views\n",
              scale, doc->size(), summary->size(), defs.size());

  // ---- Materialize into the catalog (statistics computed here). ----
  Timer t;
  ViewCatalog catalog(store_dir);
  for (const ViewDef& d : defs) {
    Status s = catalog.Materialize(d, *doc);
    if (!s.ok()) {
      std::printf("materialize %s: %s\n", d.name.c_str(),
                  s.ToString().c_str());
      return 1;
    }
  }
  double materialize_ms = t.ElapsedMillis();
  long long total_rows = 0;
  for (const auto& v : catalog.views()) total_rows += v->stats.num_rows;

  // ---- Persist and reload. ----
  t.Reset();
  Status s = catalog.Save();
  double save_ms = t.ElapsedMillis();
  if (!s.ok()) {
    std::printf("save: %s\n", s.ToString().c_str());
    return 1;
  }
  t.Reset();
  ViewCatalog reloaded(store_dir);
  s = reloaded.Load(doc.get());
  double load_ms = t.ElapsedMillis();
  if (!s.ok()) {
    std::printf("load: %s\n", s.ToString().c_str());
    return 1;
  }
  const int64_t total_bytes = reloaded.TotalBytes();
  const int64_t compressed_bytes = reloaded.TotalCompressedBytes();
  const double compression_ratio =
      compressed_bytes > 0
          ? static_cast<double>(total_bytes) /
                static_cast<double>(compressed_bytes)
          : 0;
  std::printf("materialize %.1f ms (%lld rows); save %.1f ms (%lld bytes); "
              "load %.1f ms\n",
              materialize_ms, total_rows, save_ms,
              static_cast<long long>(total_bytes), load_ms);
  std::printf("columnar extents: %lld bytes compressed (%.2fx vs row-major)"
              "\n\n",
              static_cast<long long>(compressed_bytes), compression_ratio);

  // ---- Cost-ranked rewriting + store-backed execution. ----
  CostModel model = reloaded.BuildCostModel();
  Catalog exec_catalog = reloaded.ExecutorCatalog();
  std::vector<QueryRow> rows;
  std::printf("%6s %9s %12s %12s %11s %9s %9s\n", "query", "#rewrit.",
              "cheapest", "costliest", "rewrite(ms)", "exec(ms)", "rows");
  for (const XmarkQuery& q : XmarkQueryPatterns()) {
    RewriterOptions ropts;
    ropts.max_results = 4;
    ropts.cost_model = &model;
    ropts.time_budget_ms = 10000;
    ropts.memo = reloaded.containment_memo();
    Rewriter rewriter(*summary, ropts);
    for (const auto& v : reloaded.views()) rewriter.AddView(v->def);

    // Conjunctive value form, as in bench_fig15 (base views store ID, V).
    Pattern qp = GetXmarkQueryPatternConjunctive(q.number);

    QueryRow row;
    row.number = q.number;
    RewriteStats stats;
    t.Reset();
    Result<std::vector<Rewriting>> rws =
        CachedRewrite(reloaded.rewrite_cache(), &rewriter, qp, &stats);
    row.rewrite_ms = t.ElapsedMillis();
    row.candidates_pruned = stats.candidates_pruned;
    row.memo_hits = stats.containment_memo_hits;
    row.memo_misses = stats.containment_memo_misses;
    RewriteStats warm_stats;
    t.Reset();
    Result<std::vector<Rewriting>> warm =
        CachedRewrite(reloaded.rewrite_cache(), &rewriter, qp, &warm_stats);
    row.warm_rewrite_ms = t.ElapsedMillis();
    row.rewrite_cache_hit = warm_stats.rewrite_cache_hits > 0;
    if (rws.ok() && !rws->empty()) {
      row.rewritings = rws->size();
      row.cheapest_cost = stats.cheapest_cost;
      row.costliest_cost = stats.costliest_cost;
      t.Reset();
      Result<Table> out = Execute(*rws->front().plan, exec_catalog);
      row.exec_ms = t.ElapsedMillis();
      if (out.ok()) row.exec_rows = out->NumRows();
    }
    std::printf("q%-5d %9zu %12.0f %12.0f %11.1f %9.1f %9lld\n", row.number,
                row.rewritings, row.cheapest_cost, row.costliest_cost,
                row.rewrite_ms, row.exec_ms, row.exec_rows);
    rows.push_back(row);
  }

  // ---- BENCH_viewstore.json ----
  JsonWriter w;
  w.BeginObject();
  w.KV("scale", scale);
  w.KV("document_nodes", static_cast<int64_t>(doc->size()));
  w.KV("num_views", static_cast<int64_t>(reloaded.size()));
  w.KV("total_rows", static_cast<int64_t>(total_rows));
  w.KV("total_bytes", total_bytes);
  w.KV("total_compressed_bytes", compressed_bytes);
  w.KV("compression_ratio", compression_ratio);
  w.KV("extent_resident_bytes", reloaded.memory_budget()->resident_bytes());
  w.KV("extent_evictions", reloaded.memory_budget()->evictions());
  w.KV("extent_reloads", reloaded.memory_budget()->reloads());
  w.KV("materialize_ms", materialize_ms);
  w.KV("save_ms", save_ms);
  w.KV("load_ms", load_ms);
  w.Key("queries");
  w.BeginArray();
  for (const QueryRow& r : rows) {
    w.BeginObject();
    w.KV("query", static_cast<int64_t>(r.number));
    w.KV("rewritings", static_cast<uint64_t>(r.rewritings));
    w.KV("cheapest_cost", r.cheapest_cost);
    w.KV("costliest_cost", r.costliest_cost);
    w.KV("rewrite_ms", r.rewrite_ms);
    w.KV("warm_rewrite_ms", r.warm_rewrite_ms);
    w.KV("candidates_pruned", static_cast<uint64_t>(r.candidates_pruned));
    w.KV("containment_memo_hits", static_cast<uint64_t>(r.memo_hits));
    w.KV("containment_memo_misses", static_cast<uint64_t>(r.memo_misses));
    w.KV("rewrite_cache_hit", r.rewrite_cache_hit);
    w.KV("exec_ms", r.exec_ms);
    w.KV("exec_rows", static_cast<int64_t>(r.exec_rows));
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  std::ofstream out("BENCH_viewstore.json", std::ios::trunc);
  out << w.str() << "\n";
  out.close();
  std::printf("\nwrote BENCH_viewstore.json\n");
  std::printf("catalog: %s\n", reloaded.DebugMetrics().c_str());
  EmitMetricsSnapshot("BENCH_viewstore_metrics.prom");

  if (min_compression > 0 && compression_ratio < min_compression) {
    std::fprintf(stderr,
                 "FAIL: compression ratio %.2fx below required %.2fx\n",
                 compression_ratio, min_compression);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace svx

int main(int argc, char** argv) {
  double scale = 1.0;
  double min_compression = 0;
  bool scale_set = false;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    constexpr std::string_view kMinCompression = "--min-compression=";
    if (arg.size() > kMinCompression.size() &&
        arg.substr(0, kMinCompression.size()) == kMinCompression) {
      std::optional<double> v =
          svx::ParseDouble(arg.substr(kMinCompression.size()));
      if (!v.has_value() || *v <= 0) {
        std::fprintf(stderr, "bad --min-compression: %s\n", argv[i]);
        return 2;
      }
      min_compression = *v;
    } else if (!scale_set) {
      std::optional<double> v = svx::ParseDouble(arg);
      if (!v.has_value()) {
        std::fprintf(stderr, "bad scale: %s\n", argv[i]);
        return 2;
      }
      scale = *v;
      scale_set = true;
    } else {
      std::fprintf(stderr,
                   "unknown argument: %s\nusage: bench_viewstore [scale] "
                   "[--min-compression=X]\n",
                   argv[i]);
      return 2;
    }
  }
  return svx::Run(scale, min_compression);
}
