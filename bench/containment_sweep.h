// Shared harness for the Figure 13/14 synthetic containment sweeps (§5):
// for each pattern size n and return arity r, generate `per_cell` random
// satisfiable patterns with the paper's parameters and test pairwise
// containment, reporting average times for positive and negative outcomes
// separately (the paper: "the latter are faster because the algorithm exits
// as soon as one canonical model tree contradicts the containment
// condition").
#ifndef SVX_BENCH_CONTAINMENT_SWEEP_H_
#define SVX_BENCH_CONTAINMENT_SWEEP_H_

#include <cstdio>
#include <vector>

#include "src/containment/containment.h"
#include "src/util/timer.h"
#include "src/workload/pattern_generator.h"

namespace svx {

struct SweepCell {
  int n = 0;
  int r = 0;
  int positives = 0;
  int negatives = 0;
  int skipped = 0;  // tests aborted by the canonical-model budget
  double pos_ms_avg = 0;
  double neg_ms_avg = 0;
  double model_avg = 0;  // average trees examined per test
};

inline SweepCell RunSweepCell(const Summary& summary, int n, int r,
                              int per_cell, double p_optional,
                              const std::vector<std::string>& return_labels,
                              uint64_t seed) {
  Rng rng(seed);
  PatternGenOptions gen;
  gen.num_nodes = n;
  gen.num_return = r;
  gen.p_optional = p_optional;
  gen.return_labels = return_labels;
  std::vector<Pattern> patterns;
  for (int i = 0; i < per_cell; ++i) {
    Result<Pattern> p = GeneratePattern(summary, gen, &rng);
    if (p.ok()) patterns.push_back(std::move(*p));
  }

  SweepCell cell;
  cell.n = n;
  cell.r = r;
  double pos_total = 0;
  double neg_total = 0;
  double model_total = 0;
  int model_count = 0;
  ContainmentOptions opts;
  // Budget per test: patterns over many formatting-tag paths can exceed it
  // (the paper: "a query using three bold elements is not very realistic").
  opts.model.max_trees = 3000;
  for (size_t i = 0; i < patterns.size(); ++i) {
    for (size_t j = i; j < patterns.size(); ++j) {
      ContainmentStats stats;
      Timer t;
      Result<bool> c = IsContained(patterns[i], patterns[j], summary, opts,
                                   &stats);
      double ms = t.ElapsedMillis();
      if (!c.ok()) {
        ++cell.skipped;
        continue;
      }
      model_total += static_cast<double>(stats.left_model_size);
      ++model_count;
      if (*c) {
        ++cell.positives;
        pos_total += ms;
      } else {
        ++cell.negatives;
        neg_total += ms;
      }
    }
  }
  if (cell.positives > 0) cell.pos_ms_avg = pos_total / cell.positives;
  if (cell.negatives > 0) cell.neg_ms_avg = neg_total / cell.negatives;
  if (model_count > 0) cell.model_avg = model_total / model_count;
  return cell;
}

inline void PrintSweepHeader() {
  std::printf("%4s %3s %7s %7s %6s %12s %12s %10s\n", "n", "r", "pos", "neg",
              "skip", "pos avg(ms)", "neg avg(ms)", "avg trees");
}

inline void PrintSweepCell(const SweepCell& c) {
  std::printf("%4d %3d %7d %7d %6d %12.3f %12.3f %10.1f\n", c.n, c.r,
              c.positives, c.negatives, c.skipped, c.pos_ms_avg, c.neg_ms_avg,
              c.model_avg);
  std::fflush(stdout);
}

}  // namespace svx

#endif  // SVX_BENCH_CONTAINMENT_SWEEP_H_
