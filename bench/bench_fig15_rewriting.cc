// Figure 15: XMark query rewriting (§5). For each of the 20 XMark query
// patterns, rewrite using
//   * one 2-node base view per XMark tag (root + the tag, storing ID, V) —
//     "to ensure some rewritings exist", and
//   * 100 random 3-node views with 50% optional edges, nodes storing
//     (structural) ID and V with probability 0.75,
// reporting the setup + Prop 3.4 pruning time, the time until the first
// equivalent rewriting, and the total rewriting time. The paper's shapes:
// the first rewriting is found fast (useful for early stopping), and view
// pruning keeps ~57% of the 183 views on average.
#include <cstdio>

#include "src/pattern/pattern_parser.h"
#include "src/pattern/pattern_printer.h"
#include "src/rewriting/rewriter.h"
#include "src/summary/summary_builder.h"
#include "src/util/strings.h"
#include "src/workload/pattern_generator.h"
#include "src/workload/xmark.h"
#include "src/workload/xmark_queries.h"

namespace svx {
namespace {

std::vector<ViewDef> BuildViews(const Summary& summary) {
  std::vector<ViewDef> views;
  // Base views: one per distinct tag (2-node patterns storing ID, V).
  std::vector<std::string> tags;
  for (PathId s = 1; s < summary.size(); ++s) {
    tags.push_back(summary.label(s));
  }
  std::sort(tags.begin(), tags.end());
  tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
  int base = 0;
  for (const std::string& tag : tags) {
    views.push_back(
        {StrFormat("B%d_%s", base++, tag.c_str()),
         MustParsePattern(StrFormat("site(//%s{id,v})", tag.c_str()))});
  }
  // 100 random 3-node views, 50% optional edges, attrs ID,V w.p. 0.75.
  Rng rng(99);
  PatternGenOptions gen;
  gen.num_nodes = 3;
  gen.num_return = 1;
  gen.p_optional = 0.5;
  gen.p_pred = 0.0;  // "random value predicates had the same effect"
  gen.return_labels = {};
  for (int i = 0; i < 100; ++i) {
    Result<Pattern> p = GeneratePattern(summary, gen, &rng);
    if (!p.ok()) continue;
    // Store ID,V on each non-root node with probability 0.75.
    for (PatternNodeId n = 1; n < p->size(); ++n) {
      p->mutable_node(n).attrs =
          rng.Bernoulli(0.75) ? (kAttrId | kAttrValue) : 0;
    }
    if (p->Arity() == 0) continue;
    views.push_back({StrFormat("R%d", i), std::move(*p)});
  }
  return views;
}

void Run() {
  XmarkOptions opts;
  opts.scale = 21.0;  // the paper rewrites against the XMark233 summary
  std::unique_ptr<Document> doc = GenerateXmark(opts);
  std::unique_ptr<Summary> summary = SummaryBuilder::Build(doc.get());
  std::vector<ViewDef> views = BuildViews(*summary);

  std::printf("=== Figure 15: XMark query rewriting ===\n");
  std::printf("summary: %d nodes; views: %zu (paper: 183)\n\n",
              summary->size(), views.size());
  std::printf("%6s %8s %8s %10s %10s %10s %9s %8s\n", "query", "kept",
              "kept%", "setup(ms)", "first(ms)", "total(ms)", "#rewrit.",
              "tests");

  double kept_pct_total = 0;
  int kept_cells = 0;
  double first_total = 0;
  int first_count = 0;
  for (const XmarkQuery& q : XmarkQueryPatterns()) {
    RewriterOptions ropts;
    ropts.max_results = 3;
    ropts.max_plan_views = 3;
    ropts.max_candidates = 50000;
    ropts.time_budget_ms = 20000;
    Rewriter rewriter(*summary, ropts);
    for (const ViewDef& v : views) rewriter.AddView(v);

    // The paper's base views store ID and V only ("to ensure some
    // rewritings exist"), so the harness rewrites each query's conjunctive
    // value form: C outputs in value form, optional/nested edges required
    // (⊥ rows would need outer joins, which the §3.2 algebra does not
    // provide; a view set storing the optional subtrees can serve the
    // original forms — see the rewriter tests).
    Pattern qp = GetXmarkQueryPattern(q.number);
    for (PatternNodeId n = 0; n < qp.size(); ++n) {
      Pattern::Node& node = qp.mutable_node(n);
      if (node.attrs & kAttrContent) {
        node.attrs = (node.attrs & ~kAttrContent) | kAttrValue;
      }
      node.optional = false;
      node.nested = false;
    }

    RewriteStats stats;
    Result<std::vector<Rewriting>> out = rewriter.Rewrite(qp, &stats);
    double kept_pct = stats.views_total == 0
                          ? 0
                          : 100.0 * static_cast<double>(stats.views_kept) /
                                static_cast<double>(stats.views_total);
    kept_pct_total += kept_pct;
    ++kept_cells;
    if (stats.first_ms >= 0) {
      first_total += stats.first_ms;
      ++first_count;
    }
    std::printf("q%-5d %8zu %7.0f%% %10.1f %10.1f %10.1f %9zu %8zu\n",
                q.number, stats.views_kept, kept_pct, stats.setup_ms,
                stats.first_ms, stats.total_ms,
                out.ok() ? out->size() : 0, stats.equivalence_tests);
  }
  std::printf("\naverage kept%%: %.0f%% (paper: ~57%%)",
              kept_cells ? kept_pct_total / kept_cells : 0);
  if (first_count > 0) {
    std::printf("; average time-to-first: %.1f ms (found for %d/20 queries)",
                first_total / first_count, first_count);
  }
  std::printf("\nShapes to check: first rewriting found quickly relative to "
              "total; pruning\nremoves a large fraction of the views.\n");
}

}  // namespace
}  // namespace svx

int main() {
  svx::Run();
  return 0;
}
