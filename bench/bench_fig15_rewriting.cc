// Figure 15: XMark query rewriting (§5). For each of the 20 XMark query
// patterns, rewrite using
//   * one 2-node base view per XMark tag (root + the tag, storing ID, V) —
//     "to ensure some rewritings exist", and
//   * 100 random 3-node views with 50% optional edges, nodes storing
//     (structural) ID and V with probability 0.75,
// reporting the setup + Prop 3.4 pruning time, the time until the first
// equivalent rewriting, and the total rewriting time. The paper's shapes:
// the first rewriting is found fast (useful for early stopping), and view
// pruning keeps ~57% of the 183 views on average.
//
// On top of the paper's measurement, the harness routes the view set
// through the persistent ViewCatalog (materialize -> save -> load) and
// rewrites with the statistics-driven cost model, so the reported plans are
// the cheapest covers rather than arbitrary ones.
//
//   $ ./build/bench_fig15_rewriting [--extent-scale=X] [--memory-budget-mb=N]
//
// --extent-scale sets the XMark scale of the document the view set is
// materialized over (default 1.0; the summary is always built at 21.0, the
// paper's XMark233). --memory-budget-mb bounds the decoded-extent residency
// of the catalog: the compressed columnar extents stay resident, decoded
// tables beyond the budget are evicted LRU and re-decoded lazily — which is
// what makes full-scale materialization of the 183-view set feasible.
// Writes BENCH_fig15_rewriting.json and BENCH_fig15_metrics.prom.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <string_view>

#include "bench/base_views.h"
#include "bench/bench_metrics.h"
#include "src/pattern/pattern_parser.h"
#include "src/pattern/pattern_printer.h"
#include "src/rewriting/rewriter.h"
#include "src/summary/summary_builder.h"
#include "src/util/json_writer.h"
#include "src/util/strings.h"
#include "src/util/timer.h"
#include "src/viewstore/view_catalog.h"
#include "src/workload/pattern_generator.h"
#include "src/workload/xmark.h"
#include "src/workload/xmark_queries.h"

namespace svx {
namespace {

struct QueryRow {
  int number = 0;
  size_t views_kept = 0;
  double kept_pct = 0;
  double setup_ms = 0;
  double first_ms = -1;
  double total_ms = 0;
  size_t rewritings = 0;
  size_t equivalence_tests = 0;
  double cheapest_cost = -1;
};

std::vector<ViewDef> BuildViews(const Summary& summary) {
  // Base views: one per distinct tag (2-node patterns storing ID, V).
  std::vector<ViewDef> views = BuildBaseTagViews(summary);
  // 100 random 3-node views, 50% optional edges, attrs ID,V w.p. 0.75.
  Rng rng(99);
  PatternGenOptions gen;
  gen.num_nodes = 3;
  gen.num_return = 1;
  gen.p_optional = 0.5;
  gen.p_pred = 0.0;  // "random value predicates had the same effect"
  gen.return_labels = {};
  for (int i = 0; i < 100; ++i) {
    Result<Pattern> p = GeneratePattern(summary, gen, &rng);
    if (!p.ok()) continue;
    // Store ID,V on each non-root node with probability 0.75.
    for (PatternNodeId n = 1; n < p->size(); ++n) {
      p->mutable_node(n).attrs =
          rng.Bernoulli(0.75) ? (kAttrId | kAttrValue) : 0;
    }
    if (p->Arity() == 0) continue;
    views.push_back({StrFormat("R%d", i), std::move(*p)});
  }
  return views;
}

void Run(double extent_scale, int64_t memory_budget_mb) {
  XmarkOptions opts;
  opts.scale = 21.0;  // the paper rewrites against the XMark233 summary
  std::unique_ptr<Document> doc = GenerateXmark(opts);
  std::unique_ptr<Summary> summary = SummaryBuilder::Build(doc.get());
  std::vector<ViewDef> views = BuildViews(*summary);

  std::printf("=== Figure 15: XMark query rewriting ===\n");
  std::printf("summary: %d nodes; views: %zu (paper: 183)\n",
              summary->size(), views.size());

  // Store path: materialize the view set into a persistent catalog, save
  // and reload it, and drive the rewriter's plan ranking from the stored
  // statistics. The extents are materialized over an --extent-scale
  // document; the --memory-budget-mb residency bound is what lets the full
  // 183-view set materialize at scale >= 10 without holding every decoded
  // extent in memory at once (compressed columnar extents stay resident,
  // decoded tables are evicted LRU and re-decoded on demand).
  XmarkOptions stats_opts;
  stats_opts.scale = extent_scale;
  std::unique_ptr<Document> stats_doc = GenerateXmark(stats_opts);
  const std::string store_dir =
      (std::filesystem::temp_directory_path() / "svx_bench_fig15_store")
          .string();
  std::error_code ec;
  std::filesystem::remove_all(store_dir, ec);
  ViewCatalogOptions copts;
  copts.dir = store_dir;
  copts.memory_budget_bytes = memory_budget_mb * 1024 * 1024;
  Timer store_timer;
  ViewCatalog catalog(copts);
  for (const ViewDef& v : views) {
    Status s = catalog.Materialize(v, *stats_doc);
    if (!s.ok()) std::printf("materialize %s: %s\n", v.name.c_str(),
                             s.ToString().c_str());
  }
  double materialize_ms = store_timer.ElapsedMillis();
  const std::shared_ptr<MemoryBudget>& wbudget = catalog.memory_budget();
  int64_t materialize_resident = wbudget->resident_bytes();
  int64_t materialize_evictions = wbudget->evictions();
  store_timer.Reset();
  Status store_status = catalog.Save();
  ViewCatalog reloaded(copts);
  if (store_status.ok()) store_status = reloaded.Load(stats_doc.get());
  double persist_ms = store_timer.ElapsedMillis();
  if (!store_status.ok()) {
    std::printf("view store unavailable (%s); continuing without costs\n",
                store_status.ToString().c_str());
  }
  CostModel model = reloaded.BuildCostModel();
  std::printf(
      "view store: materialized %.1f ms, save+load %.1f ms, "
      "%lld bytes (%lld compressed)\n",
      materialize_ms, persist_ms,
      static_cast<long long>(reloaded.TotalBytes()),
      static_cast<long long>(reloaded.TotalCompressedBytes()));
  std::printf(
      "memory budget: %lld MB; resident after materialize %lld bytes, "
      "evictions %lld\n\n",
      static_cast<long long>(memory_budget_mb),
      static_cast<long long>(materialize_resident),
      static_cast<long long>(materialize_evictions));

  std::printf("%6s %8s %8s %10s %10s %10s %9s %8s %10s\n", "query", "kept",
              "kept%", "setup(ms)", "first(ms)", "total(ms)", "#rewrit.",
              "tests", "cheapest");

  std::vector<QueryRow> rows;
  double kept_pct_total = 0;
  int kept_cells = 0;
  double first_total = 0;
  int first_count = 0;
  for (const XmarkQuery& q : XmarkQueryPatterns()) {
    RewriterOptions ropts;
    ropts.max_results = 3;
    ropts.max_plan_views = 3;
    ropts.max_candidates = 50000;
    ropts.time_budget_ms = 20000;
    if (store_status.ok()) ropts.cost_model = &model;
    Rewriter rewriter(*summary, ropts);
    for (const ViewDef& v : views) rewriter.AddView(v);

    // The paper's base views store ID and V only ("to ensure some
    // rewritings exist"), so the harness rewrites each query's conjunctive
    // value form: C outputs in value form, optional/nested edges required
    // (⊥ rows would need outer joins, which the §3.2 algebra does not
    // provide; a view set storing the optional subtrees can serve the
    // original forms — see the rewriter tests).
    Pattern qp = GetXmarkQueryPattern(q.number);
    for (PatternNodeId n = 0; n < qp.size(); ++n) {
      Pattern::Node& node = qp.mutable_node(n);
      if (node.attrs & kAttrContent) {
        node.attrs = (node.attrs & ~kAttrContent) | kAttrValue;
      }
      node.optional = false;
      node.nested = false;
    }

    RewriteStats stats;
    Result<std::vector<Rewriting>> out = rewriter.Rewrite(qp, &stats);
    QueryRow row;
    row.number = q.number;
    row.views_kept = stats.views_kept;
    row.kept_pct = stats.views_total == 0
                       ? 0
                       : 100.0 * static_cast<double>(stats.views_kept) /
                             static_cast<double>(stats.views_total);
    row.setup_ms = stats.setup_ms;
    row.first_ms = stats.first_ms;
    row.total_ms = stats.total_ms;
    row.rewritings = out.ok() ? out->size() : 0;
    row.equivalence_tests = stats.equivalence_tests;
    row.cheapest_cost = stats.cheapest_cost;
    kept_pct_total += row.kept_pct;
    ++kept_cells;
    if (stats.first_ms >= 0) {
      first_total += stats.first_ms;
      ++first_count;
    }
    std::printf("q%-5d %8zu %7.0f%% %10.1f %10.1f %10.1f %9zu %8zu %10.0f\n",
                q.number, row.views_kept, row.kept_pct, row.setup_ms,
                row.first_ms, row.total_ms, row.rewritings,
                row.equivalence_tests, row.cheapest_cost);
    rows.push_back(row);
  }
  std::printf("\naverage kept%%: %.0f%% (paper: ~57%%)",
              kept_cells ? kept_pct_total / kept_cells : 0);
  if (first_count > 0) {
    std::printf("; average time-to-first: %.1f ms (found for %d/20 queries)",
                first_total / first_count, first_count);
  }
  std::printf("\nShapes to check: first rewriting found quickly relative to "
              "total; pruning\nremoves a large fraction of the views.\n");

  // ---- BENCH_fig15_rewriting.json ----
  const std::shared_ptr<MemoryBudget>& budget = reloaded.memory_budget();
  JsonWriter w;
  w.BeginObject();
  w.KV("extent_scale", extent_scale);
  w.KV("memory_budget_mb", memory_budget_mb);
  w.KV("num_views", static_cast<int64_t>(reloaded.size()));
  w.KV("materialize_ms", materialize_ms);
  w.KV("persist_ms", persist_ms);
  w.KV("total_bytes", reloaded.TotalBytes());
  w.KV("total_compressed_bytes", reloaded.TotalCompressedBytes());
  w.KV("materialize_resident_bytes", materialize_resident);
  w.KV("materialize_evictions", materialize_evictions);
  w.KV("resident_bytes", budget->resident_bytes());
  w.KV("evictions", budget->evictions());
  w.KV("reloads", budget->reloads());
  w.KV("avg_kept_pct", kept_cells ? kept_pct_total / kept_cells : 0);
  w.Key("queries");
  w.BeginArray();
  for (const QueryRow& r : rows) {
    w.BeginObject();
    w.KV("query", static_cast<int64_t>(r.number));
    w.KV("views_kept", static_cast<uint64_t>(r.views_kept));
    w.KV("kept_pct", r.kept_pct);
    w.KV("setup_ms", r.setup_ms);
    w.KV("first_ms", r.first_ms);
    w.KV("total_ms", r.total_ms);
    w.KV("rewritings", static_cast<uint64_t>(r.rewritings));
    w.KV("equivalence_tests", static_cast<uint64_t>(r.equivalence_tests));
    w.KV("cheapest_cost", r.cheapest_cost);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  std::ofstream json_out("BENCH_fig15_rewriting.json", std::ios::trunc);
  json_out << w.str() << "\n";
  json_out.close();
  std::printf("\nwrote BENCH_fig15_rewriting.json\n");
  std::printf("catalog: %s\n", reloaded.DebugMetrics().c_str());
  EmitMetricsSnapshot("BENCH_fig15_metrics.prom");
}

}  // namespace
}  // namespace svx

int main(int argc, char** argv) {
  double extent_scale = 1.0;
  int64_t memory_budget_mb = 0;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto value_of =
        [&](std::string_view prefix) -> std::optional<std::string_view> {
      if (arg.size() > prefix.size() && arg.substr(0, prefix.size()) == prefix)
        return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (auto v = value_of("--extent-scale=")) {
      std::optional<double> parsed = svx::ParseDouble(*v);
      if (!parsed.has_value() || *parsed <= 0) {
        std::fprintf(stderr, "bad --extent-scale: %s\n", argv[i]);
        return 2;
      }
      extent_scale = *parsed;
    } else if (auto v = value_of("--memory-budget-mb=")) {
      std::optional<int64_t> parsed = svx::ParseInt64(*v);
      if (!parsed.has_value() || *parsed < 0) {
        std::fprintf(stderr, "bad --memory-budget-mb: %s\n", argv[i]);
        return 2;
      }
      memory_budget_mb = *parsed;
    } else {
      std::fprintf(stderr,
                   "unknown argument: %s\nusage: bench_fig15_rewriting "
                   "[--extent-scale=X] [--memory-budget-mb=N]\n",
                   argv[i]);
      return 2;
    }
  }
  svx::Run(extent_scale, memory_budget_mb);
  return 0;
}
