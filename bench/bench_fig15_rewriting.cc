// Figure 15: XMark query rewriting (§5). For each of the 20 XMark query
// patterns, rewrite using
//   * one 2-node base view per XMark tag (root + the tag, storing ID, V) —
//     "to ensure some rewritings exist", and
//   * 100 random 3-node views with 50% optional edges, nodes storing
//     (structural) ID and V with probability 0.75,
// reporting the setup + Prop 3.4 pruning time, the time until the first
// equivalent rewriting, and the total rewriting time. The paper's shapes:
// the first rewriting is found fast (useful for early stopping), and view
// pruning keeps ~57% of the 183 views on average.
//
// On top of the paper's measurement, the harness routes the view set
// through the persistent ViewCatalog (materialize -> save -> load) and
// rewrites with the statistics-driven cost model, so the reported plans are
// the cheapest covers rather than arbitrary ones.
#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "bench/base_views.h"
#include "src/pattern/pattern_parser.h"
#include "src/pattern/pattern_printer.h"
#include "src/rewriting/rewriter.h"
#include "src/summary/summary_builder.h"
#include "src/util/strings.h"
#include "src/util/timer.h"
#include "src/viewstore/view_catalog.h"
#include "src/workload/pattern_generator.h"
#include "src/workload/xmark.h"
#include "src/workload/xmark_queries.h"

namespace svx {
namespace {

std::vector<ViewDef> BuildViews(const Summary& summary) {
  // Base views: one per distinct tag (2-node patterns storing ID, V).
  std::vector<ViewDef> views = BuildBaseTagViews(summary);
  // 100 random 3-node views, 50% optional edges, attrs ID,V w.p. 0.75.
  Rng rng(99);
  PatternGenOptions gen;
  gen.num_nodes = 3;
  gen.num_return = 1;
  gen.p_optional = 0.5;
  gen.p_pred = 0.0;  // "random value predicates had the same effect"
  gen.return_labels = {};
  for (int i = 0; i < 100; ++i) {
    Result<Pattern> p = GeneratePattern(summary, gen, &rng);
    if (!p.ok()) continue;
    // Store ID,V on each non-root node with probability 0.75.
    for (PatternNodeId n = 1; n < p->size(); ++n) {
      p->mutable_node(n).attrs =
          rng.Bernoulli(0.75) ? (kAttrId | kAttrValue) : 0;
    }
    if (p->Arity() == 0) continue;
    views.push_back({StrFormat("R%d", i), std::move(*p)});
  }
  return views;
}

void Run() {
  XmarkOptions opts;
  opts.scale = 21.0;  // the paper rewrites against the XMark233 summary
  std::unique_ptr<Document> doc = GenerateXmark(opts);
  std::unique_ptr<Summary> summary = SummaryBuilder::Build(doc.get());
  std::vector<ViewDef> views = BuildViews(*summary);

  std::printf("=== Figure 15: XMark query rewriting ===\n");
  std::printf("summary: %d nodes; views: %zu (paper: 183)\n",
              summary->size(), views.size());

  // Store path: materialize the view set into a persistent catalog, save
  // and reload it, and drive the rewriter's plan ranking from the stored
  // statistics. Extents are materialized over a scale-1.0 sample document
  // (statistics only need relative sizes; some random descendant-edge views
  // produce multiplicative extents at full scale).
  XmarkOptions stats_opts;
  stats_opts.scale = 1.0;
  std::unique_ptr<Document> stats_doc = GenerateXmark(stats_opts);
  const std::string store_dir =
      (std::filesystem::temp_directory_path() / "svx_bench_fig15_store")
          .string();
  Timer store_timer;
  ViewCatalog catalog(store_dir);
  for (const ViewDef& v : views) {
    Status s = catalog.Materialize(v, *stats_doc);
    if (!s.ok()) std::printf("materialize %s: %s\n", v.name.c_str(),
                             s.ToString().c_str());
  }
  double materialize_ms = store_timer.ElapsedMillis();
  store_timer.Reset();
  Status store_status = catalog.Save();
  ViewCatalog reloaded(store_dir);
  if (store_status.ok()) store_status = reloaded.Load(stats_doc.get());
  double persist_ms = store_timer.ElapsedMillis();
  if (!store_status.ok()) {
    std::printf("view store unavailable (%s); continuing without costs\n",
                store_status.ToString().c_str());
  }
  CostModel model = reloaded.BuildCostModel();
  std::printf("view store: materialized %.1f ms, save+load %.1f ms, "
              "%lld bytes\n\n",
              materialize_ms, persist_ms,
              static_cast<long long>(reloaded.TotalBytes()));

  std::printf("%6s %8s %8s %10s %10s %10s %9s %8s %10s\n", "query", "kept",
              "kept%", "setup(ms)", "first(ms)", "total(ms)", "#rewrit.",
              "tests", "cheapest");

  double kept_pct_total = 0;
  int kept_cells = 0;
  double first_total = 0;
  int first_count = 0;
  for (const XmarkQuery& q : XmarkQueryPatterns()) {
    RewriterOptions ropts;
    ropts.max_results = 3;
    ropts.max_plan_views = 3;
    ropts.max_candidates = 50000;
    ropts.time_budget_ms = 20000;
    if (store_status.ok()) ropts.cost_model = &model;
    Rewriter rewriter(*summary, ropts);
    for (const ViewDef& v : views) rewriter.AddView(v);

    // The paper's base views store ID and V only ("to ensure some
    // rewritings exist"), so the harness rewrites each query's conjunctive
    // value form: C outputs in value form, optional/nested edges required
    // (⊥ rows would need outer joins, which the §3.2 algebra does not
    // provide; a view set storing the optional subtrees can serve the
    // original forms — see the rewriter tests).
    Pattern qp = GetXmarkQueryPattern(q.number);
    for (PatternNodeId n = 0; n < qp.size(); ++n) {
      Pattern::Node& node = qp.mutable_node(n);
      if (node.attrs & kAttrContent) {
        node.attrs = (node.attrs & ~kAttrContent) | kAttrValue;
      }
      node.optional = false;
      node.nested = false;
    }

    RewriteStats stats;
    Result<std::vector<Rewriting>> out = rewriter.Rewrite(qp, &stats);
    double kept_pct = stats.views_total == 0
                          ? 0
                          : 100.0 * static_cast<double>(stats.views_kept) /
                                static_cast<double>(stats.views_total);
    kept_pct_total += kept_pct;
    ++kept_cells;
    if (stats.first_ms >= 0) {
      first_total += stats.first_ms;
      ++first_count;
    }
    std::printf("q%-5d %8zu %7.0f%% %10.1f %10.1f %10.1f %9zu %8zu %10.0f\n",
                q.number, stats.views_kept, kept_pct, stats.setup_ms,
                stats.first_ms, stats.total_ms,
                out.ok() ? out->size() : 0, stats.equivalence_tests,
                stats.cheapest_cost);
  }
  std::printf("\naverage kept%%: %.0f%% (paper: ~57%%)",
              kept_cells ? kept_pct_total / kept_cells : 0);
  if (first_count > 0) {
    std::printf("; average time-to-first: %.1f ms (found for %d/20 queries)",
                first_total / first_count, first_count);
  }
  std::printf("\nShapes to check: first rewriting found quickly relative to "
              "total; pruning\nremoves a large fraction of the views.\n");
}

}  // namespace
}  // namespace svx

int main() {
  svx::Run();
  return 0;
}
