// Rewriter fast-path benchmark: cold vs warm rewrite latency over the
// 20-query XMark workload (the bench_viewstore workload), at one or more
// document scales.
//
// Per query it measures
//   * baseline_ms  — the rewriter with every PR-4 fast path disabled
//                    (no view index, no containment memo, no rewrite cache),
//   * cold_ms      — ViewIndex + coverage pruning + catalog-pinned
//                    containment memo, first (cache-miss) call,
//   * warm_ms      — the same query again, served from the catalog's
//                    RewriteCache,
// and verifies that
//   * every baseline rewriting is found identically (compact form and
//     estimated cost) by the optimized rewriter — the pruned search only
//     removes provably fruitless work, so it can find strictly more
//     rewritings on queries where the baseline exhausts its candidate
//     budget, never fewer or different ones;
//   * the optimized cheapest plan, executed over the stored extents,
//     returns exactly the query's direct evaluation over the document.
//
// Writes BENCH_rewriter.json into the working directory.
//
//   $ ./bench_rewriter [scale ...] [--ceiling-ms N]
//
// With --ceiling-ms, exits non-zero when any cold rewrite exceeds N ms —
// the CI regression guard.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "bench/base_views.h"
#include "bench/bench_metrics.h"
#include "src/algebra/executor.h"
#include "src/observability/trace.h"
#include "src/rewriting/rewriter.h"
#include "src/summary/summary_builder.h"
#include "src/util/json_writer.h"
#include "src/util/strings.h"
#include "src/util/timer.h"
#include "src/viewstore/rewrite_cache.h"
#include "src/viewstore/view_catalog.h"
#include "src/workload/xmark.h"
#include "src/workload/xmark_queries.h"

namespace svx {
namespace {

struct QueryRow {
  int number = 0;
  double baseline_ms = 0;
  double cold_ms = 0;
  double warm_ms = 0;
  size_t baseline_rewritings = 0;
  size_t rewritings = 0;
  size_t candidates_pruned = 0;
  size_t memo_hits = 0;
  size_t memo_misses = 0;
  bool cache_hit_on_warm = false;
  bool plans_match = false;     // identical ranked plan lists
  bool plans_superset = false;  // baseline plans all found by optimized
  bool exec_matches_direct = true;
};

struct ScaleReport {
  double scale = 0;
  int32_t document_nodes = 0;
  int32_t summary_paths = 0;
  size_t num_views = 0;
  double geomean_speedup = 0;  // baseline_ms / cold_ms
  double max_cold_ms = 0;
  std::vector<QueryRow> rows;
};

std::vector<std::string> Compacts(const std::vector<Rewriting>& rws) {
  std::vector<std::string> out;
  out.reserve(rws.size());
  for (const Rewriting& r : rws) out.push_back(r.compact);
  return out;
}

/// Re-runs q13 cold with tracing on — a fresh Rewriter carrying
/// RewriterOptions::trace and a fresh RewriteCache so the span tree shows
/// the miss path (cache-lookup, every rewrite phase, plan execution) — and
/// writes the rendered tree to BENCH_rewriter_trace_q13.json.
void WriteTraceQ13(const ViewCatalog& catalog, const Summary& summary,
                   const RewriterOptions& fast_opts,
                   const Catalog& exec_catalog) {
  Trace trace("q13");
  RewriterOptions traced_opts = fast_opts;
  traced_opts.trace = trace.root();
  Rewriter traced(summary, traced_opts);
  for (const auto& v : catalog.views()) traced.AddView(v->def);
  Pattern qp = GetXmarkQueryPatternConjunctive(13);
  RewriteCache fresh_cache;
  RewriteStats stats;
  Result<std::vector<Rewriting>> rws =
      CachedRewrite(&fresh_cache, &traced, qp, &stats);
  if (rws.ok() && !rws->empty()) {
    Result<Table> out =
        Execute(*rws->front().plan, exec_catalog, trace.root());
    (void)out;
  }
  std::ofstream out("BENCH_rewriter_trace_q13.json", std::ios::trunc);
  out << trace.RenderJson();
  std::printf("wrote BENCH_rewriter_trace_q13.json\n");
}

ScaleReport RunScale(double scale, bool write_trace) {
  namespace fs = std::filesystem;
  ScaleReport report;
  report.scale = scale;

  XmarkOptions opts;
  opts.scale = scale;
  std::unique_ptr<Document> doc = GenerateXmark(opts);
  std::unique_ptr<Summary> summary = SummaryBuilder::Build(doc.get());
  std::vector<ViewDef> defs = BuildBaseTagViews(*summary);
  report.document_nodes = doc->size();
  report.summary_paths = summary->size();
  report.num_views = defs.size();

  const std::string store_dir =
      (fs::temp_directory_path() / "svx_bench_rewriter").string();
  ViewCatalog catalog(store_dir);
  for (const ViewDef& d : defs) {
    Status s = catalog.Materialize(d, *doc);
    if (!s.ok()) {
      std::printf("materialize %s: %s\n", d.name.c_str(),
                  s.ToString().c_str());
      return report;
    }
  }
  CostModel model = catalog.BuildCostModel();
  Catalog exec_catalog = catalog.ExecutorCatalog();

  // One shared rewriter per configuration: the optimized one builds its
  // ViewIndex once at first use (registration-time cost, amortized over
  // the workload) and pins the catalog's containment memo.
  RewriterOptions base_opts;
  base_opts.max_results = 4;
  base_opts.time_budget_ms = 30000;
  base_opts.cost_model = &model;
  base_opts.use_view_index = false;
  base_opts.memoize_containment = false;
  Rewriter baseline(*summary, base_opts);

  RewriterOptions fast_opts = base_opts;
  fast_opts.use_view_index = true;
  fast_opts.memoize_containment = true;
  fast_opts.memo = catalog.containment_memo();
  Rewriter optimized(*summary, fast_opts);

  for (const auto& v : catalog.views()) {
    baseline.AddView(v->def);
    optimized.AddView(v->def);
  }

  std::printf(
      "scale %.1f: %d nodes, %d paths, %zu views\n"
      "%6s %12s %9s %9s %7s %7s %7s %6s %6s %5s\n",
      scale, doc->size(), summary->size(), defs.size(), "query",
      "baseline(ms)", "cold(ms)", "warm(ms)", "#rw", "pruned", "memoH",
      "plans", "exec", "hit");

  double log_speedup_sum = 0;
  for (const XmarkQuery& q : XmarkQueryPatterns()) {
    Pattern qp = GetXmarkQueryPatternConjunctive(q.number);
    QueryRow row;
    row.number = q.number;

    Timer t;
    Result<std::vector<Rewriting>> base_rws = baseline.Rewrite(qp);
    row.baseline_ms = t.ElapsedMillis();
    row.baseline_rewritings = base_rws.ok() ? base_rws->size() : 0;

    RewriteStats cold_stats;
    t.Reset();
    Result<std::vector<Rewriting>> cold_rws = CachedRewrite(
        catalog.rewrite_cache(), &optimized, qp, &cold_stats);
    row.cold_ms = t.ElapsedMillis();
    row.candidates_pruned = cold_stats.candidates_pruned;
    row.memo_hits = cold_stats.containment_memo_hits;
    row.memo_misses = cold_stats.containment_memo_misses;
    row.rewritings = cold_rws.ok() ? cold_rws->size() : 0;

    // Plan verification: baseline results must reappear identically.
    if (base_rws.ok() && cold_rws.ok()) {
      std::vector<std::string> base_c = Compacts(*base_rws);
      std::vector<std::string> cold_c = Compacts(*cold_rws);
      row.plans_match = base_c == cold_c;
      row.plans_superset = true;
      for (const std::string& c : base_c) {
        row.plans_superset =
            row.plans_superset &&
            std::find(cold_c.begin(), cold_c.end(), c) != cold_c.end();
      }
    }

    // Execution verification: cheapest optimized plan ≡ direct evaluation.
    if (cold_rws.ok() && !cold_rws->empty()) {
      Table reference = MaterializeView(qp, "Q", *doc);
      Result<Table> out = Execute(*cold_rws->front().plan, exec_catalog);
      row.exec_matches_direct =
          out.ok() && out->EqualsIgnoringOrder(reference);
    }

    RewriteStats warm_stats;
    t.Reset();
    Result<std::vector<Rewriting>> warm_rws = CachedRewrite(
        catalog.rewrite_cache(), &optimized, qp, &warm_stats);
    row.warm_ms = t.ElapsedMillis();
    row.cache_hit_on_warm = warm_stats.rewrite_cache_hits > 0;
    if (warm_rws.ok() && cold_rws.ok()) {
      row.plans_match =
          row.plans_match && Compacts(*warm_rws) == Compacts(*cold_rws);
    }

    log_speedup_sum +=
        std::log(row.baseline_ms / std::max(row.cold_ms, 1e-3));
    report.max_cold_ms = std::max(report.max_cold_ms, row.cold_ms);
    std::printf("q%-5d %12.1f %9.1f %9.3f %3zu/%-3zu %7zu %7zu %6s %6s %5s\n",
                row.number, row.baseline_ms, row.cold_ms, row.warm_ms,
                row.baseline_rewritings, row.rewritings,
                row.candidates_pruned, row.memo_hits,
                row.plans_match ? "=" : (row.plans_superset ? "⊇" : "✗"),
                row.exec_matches_direct ? "ok" : "BAD",
                row.cache_hit_on_warm ? "yes" : "NO");
    report.rows.push_back(row);
  }
  report.geomean_speedup =
      std::exp(log_speedup_sum / static_cast<double>(report.rows.size()));
  std::printf("geomean cold speedup vs in-process baseline: %.2fx\n\n",
              report.geomean_speedup);
  if (write_trace) {
    WriteTraceQ13(catalog, *summary, fast_opts, exec_catalog);
  }
  // Refreshes the epoch gauges for the metrics snapshot main writes last.
  std::string debug = catalog.DebugMetrics();
  (void)debug;
  return report;
}

void WriteJson(const std::vector<ScaleReport>& reports) {
  JsonWriter w;
  w.BeginObject();
  w.Key("scales");
  w.BeginArray();
  for (const ScaleReport& r : reports) {
    w.BeginObject();
    w.KV("scale", r.scale);
    w.KV("document_nodes", static_cast<int64_t>(r.document_nodes));
    w.KV("summary_paths", static_cast<int64_t>(r.summary_paths));
    w.KV("num_views", static_cast<uint64_t>(r.num_views));
    w.KV("geomean_speedup", r.geomean_speedup);
    w.KV("max_cold_ms", r.max_cold_ms);
    w.Key("queries");
    w.BeginArray();
    for (const QueryRow& q : r.rows) {
      w.BeginObject();
      w.KV("query", static_cast<int64_t>(q.number));
      w.KV("baseline_ms", q.baseline_ms);
      w.KV("cold_ms", q.cold_ms);
      w.KV("warm_ms", q.warm_ms);
      w.KV("baseline_rewritings", static_cast<uint64_t>(q.baseline_rewritings));
      w.KV("rewritings", static_cast<uint64_t>(q.rewritings));
      w.KV("candidates_pruned", static_cast<uint64_t>(q.candidates_pruned));
      w.KV("containment_memo_hits", static_cast<uint64_t>(q.memo_hits));
      w.KV("containment_memo_misses", static_cast<uint64_t>(q.memo_misses));
      w.KV("rewrite_cache_hit_on_warm", q.cache_hit_on_warm);
      w.KV("plans_match", q.plans_match);
      w.KV("plans_superset", q.plans_superset);
      w.KV("exec_matches_direct", q.exec_matches_direct);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  std::ofstream out("BENCH_rewriter.json", std::ios::trunc);
  out << w.str() << "\n";
}

}  // namespace
}  // namespace svx

int main(int argc, char** argv) {
  std::vector<double> scales;
  double ceiling_ms = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ceiling-ms") == 0) {
      std::optional<double> v =
          i + 1 < argc ? svx::ParseDouble(argv[++i]) : std::nullopt;
      if (!v.has_value() || *v <= 0) {
        std::fprintf(stderr, "--ceiling-ms needs a positive value\n");
        return 2;
      }
      ceiling_ms = *v;
    } else {
      std::optional<double> scale = svx::ParseDouble(argv[i]);
      if (!scale.has_value() || *scale <= 0) {
        std::fprintf(stderr, "bad argument: %s\n", argv[i]);
        return 2;
      }
      scales.push_back(*scale);
    }
  }
  if (scales.empty()) scales = {0.5, 1.0};
  svx::metrics::RegisterStandardMetrics();

  std::vector<svx::ScaleReport> reports;
  for (size_t i = 0; i < scales.size(); ++i) {
    reports.push_back(svx::RunScale(scales[i], /*write_trace=*/i == 0));
  }
  svx::WriteJson(reports);
  std::printf("wrote BENCH_rewriter.json\n");
  svx::EmitMetricsSnapshot("BENCH_rewriter_metrics.prom");

  bool ok = true;
  for (const svx::ScaleReport& r : reports) {
    for (const svx::QueryRow& q : r.rows) {
      ok = ok && q.plans_superset && q.exec_matches_direct &&
           q.cache_hit_on_warm;
      if (ceiling_ms > 0 && q.cold_ms > ceiling_ms) {
        std::printf("FAIL: scale %.1f q%d cold %.1f ms exceeds ceiling %.1f "
                    "ms\n",
                    r.scale, q.number, q.cold_ms, ceiling_ms);
        ok = false;
      }
    }
  }
  if (!ok) std::printf("bench_rewriter: FAILED verification\n");
  return ok ? 0 : 1;
}
