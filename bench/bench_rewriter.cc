// Rewriter fast-path benchmark: cold vs warm rewrite latency over the
// 20-query XMark workload (the bench_viewstore workload), at one or more
// document scales.
//
// Per query it measures
//   * baseline_ms  — the rewriter with every PR-4 fast path disabled
//                    (no view index, no containment memo, no rewrite cache),
//   * cold_ms      — ViewIndex + coverage pruning + catalog-pinned
//                    containment memo, first (cache-miss) call,
//   * warm_ms      — the same query again, served from the catalog's
//                    RewriteCache,
// and verifies that
//   * whenever the exhaustive baseline finds a rewriting, the DP enumerator
//     finds one too, and its cheapest plan's estimated cost is no worse
//     than the baseline's cheapest — the DP search keeps the Pareto
//     frontier, not the full rewriting list, so it may return fewer
//     alternatives but never a worse best plan;
//   * the optimized cheapest plan, executed over the stored extents,
//     returns exactly the query's direct evaluation over the document;
//   * warm repeats hit the rewrite cache (except truncated searches, which
//     are deliberately never cached).
//
// Writes BENCH_rewriter.json into the working directory.
//
//   $ ./bench_rewriter [scale ...] [--ceiling-ms N] [--min-cost-corr R]
//
// With --ceiling-ms, exits non-zero when any cold rewrite exceeds N ms;
// with --min-cost-corr, when the per-scale Spearman correlation between
// estimated cost and measured execution time falls below R — the CI
// regression guards.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "bench/base_views.h"
#include "bench/bench_metrics.h"
#include "src/algebra/executor.h"
#include "src/observability/trace.h"
#include "src/rewriting/rewriter.h"
#include "src/summary/summary_builder.h"
#include "src/util/json_writer.h"
#include "src/util/strings.h"
#include "src/util/timer.h"
#include "src/viewstore/rewrite_cache.h"
#include "src/viewstore/view_catalog.h"
#include "src/workload/xmark.h"
#include "src/workload/xmark_queries.h"

namespace svx {
namespace {

struct QueryRow {
  int number = 0;
  double baseline_ms = 0;
  double cold_ms = 0;
  double warm_ms = 0;
  size_t baseline_rewritings = 0;
  size_t rewritings = 0;
  size_t candidates_pruned = 0;
  size_t plans_generated = 0;
  size_t plans_dominated = 0;
  size_t memo_hits = 0;
  size_t memo_misses = 0;
  double estimated_cost = -1;  // cheapest plan's model cost
  double exec_ms = -1;         // measured execution of that plan
  bool search_truncated = false;
  bool cache_hit_on_warm = false;
  /// The DP search discards dominated plans, so the optimized list is not a
  /// superset of the baseline's. The contract is: it finds a rewriting
  /// whenever the baseline does, and its cheapest costs no more.
  bool found_when_baseline_found = true;
  bool cost_not_worse = true;
  bool exec_matches_direct = true;
};

struct ScaleReport {
  double scale = 0;
  int32_t document_nodes = 0;
  int32_t summary_paths = 0;
  size_t num_views = 0;
  double geomean_speedup = 0;  // baseline_ms / cold_ms
  double max_cold_ms = 0;
  /// Spearman rank correlation between estimated_cost and exec_ms over the
  /// queries with a rewriting — the cost model's usefulness as a ranker.
  double cost_spearman = 0;
  std::vector<QueryRow> rows;
};

/// Spearman rank correlation (midranks for ties) of cost vs. time pairs.
double Spearman(const std::vector<std::pair<double, double>>& pairs) {
  size_t n = pairs.size();
  if (n < 3) return 0;
  auto ranks = [n](std::vector<double> v) {
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](size_t a, size_t b) { return v[a] < v[b]; });
    std::vector<double> r(n);
    size_t i = 0;
    while (i < n) {
      size_t j = i;
      while (j + 1 < n && v[idx[j + 1]] == v[idx[i]]) ++j;
      double mid = (static_cast<double>(i) + static_cast<double>(j)) / 2 + 1;
      for (size_t k = i; k <= j; ++k) r[idx[k]] = mid;
      i = j + 1;
    }
    return r;
  };
  std::vector<double> c(n), t(n);
  for (size_t i = 0; i < n; ++i) {
    c[i] = pairs[i].first;
    t[i] = pairs[i].second;
  }
  std::vector<double> rc = ranks(c);
  std::vector<double> rt = ranks(t);
  double mc = 0, mt = 0;
  for (size_t i = 0; i < n; ++i) {
    mc += rc[i];
    mt += rt[i];
  }
  mc /= static_cast<double>(n);
  mt /= static_cast<double>(n);
  double num = 0, dc = 0, dt = 0;
  for (size_t i = 0; i < n; ++i) {
    num += (rc[i] - mc) * (rt[i] - mt);
    dc += (rc[i] - mc) * (rc[i] - mc);
    dt += (rt[i] - mt) * (rt[i] - mt);
  }
  if (dc <= 0 || dt <= 0) return 0;
  return num / std::sqrt(dc * dt);
}

std::vector<std::string> Compacts(const std::vector<Rewriting>& rws) {
  std::vector<std::string> out;
  out.reserve(rws.size());
  for (const Rewriting& r : rws) out.push_back(r.compact);
  return out;
}

/// Re-runs q13 cold with tracing on — a fresh Rewriter carrying
/// RewriterOptions::trace and a fresh RewriteCache so the span tree shows
/// the miss path (cache-lookup, every rewrite phase, plan execution) — and
/// writes the rendered tree to BENCH_rewriter_trace_q13.json.
void WriteTraceQ13(const ViewCatalog& catalog, const Summary& summary,
                   const RewriterOptions& fast_opts,
                   const Catalog& exec_catalog) {
  Trace trace("q13");
  RewriterOptions traced_opts = fast_opts;
  traced_opts.trace = trace.root();
  Rewriter traced(summary, traced_opts);
  for (const auto& v : catalog.views()) traced.AddView(v->def);
  Pattern qp = GetXmarkQueryPatternConjunctive(13);
  RewriteCache fresh_cache;
  RewriteStats stats;
  Result<std::vector<Rewriting>> rws =
      CachedRewrite(&fresh_cache, &traced, qp, &stats);
  if (rws.ok() && !rws->empty()) {
    Result<Table> out =
        Execute(*rws->front().plan, exec_catalog, trace.root());
    (void)out;
  }
  std::ofstream out("BENCH_rewriter_trace_q13.json", std::ios::trunc);
  out << trace.RenderJson();
  std::printf("wrote BENCH_rewriter_trace_q13.json\n");
}

ScaleReport RunScale(double scale, bool write_trace) {
  namespace fs = std::filesystem;
  ScaleReport report;
  report.scale = scale;

  XmarkOptions opts;
  opts.scale = scale;
  std::unique_ptr<Document> doc = GenerateXmark(opts);
  std::unique_ptr<Summary> summary = SummaryBuilder::Build(doc.get());
  std::vector<ViewDef> defs = BuildBaseTagViews(*summary);
  report.document_nodes = doc->size();
  report.summary_paths = summary->size();
  report.num_views = defs.size();

  const std::string store_dir =
      (fs::temp_directory_path() / "svx_bench_rewriter").string();
  ViewCatalog catalog(store_dir);
  for (const ViewDef& d : defs) {
    Status s = catalog.Materialize(d, *doc);
    if (!s.ok()) {
      std::printf("materialize %s: %s\n", d.name.c_str(),
                  s.ToString().c_str());
      return report;
    }
  }
  CostModel model = catalog.BuildCostModel();
  Catalog exec_catalog = catalog.ExecutorCatalog();

  // One shared rewriter per configuration: the optimized one builds its
  // ViewIndex once at first use (registration-time cost, amortized over
  // the workload) and pins the catalog's containment memo.
  RewriterOptions base_opts;
  base_opts.max_results = 4;
  base_opts.time_budget_ms = 30000;
  base_opts.cost_model = &model;
  base_opts.use_view_index = false;
  base_opts.memoize_containment = false;
  Rewriter baseline(*summary, base_opts);

  RewriterOptions fast_opts = base_opts;
  fast_opts.use_view_index = true;
  fast_opts.memoize_containment = true;
  fast_opts.memo = catalog.containment_memo();
  Rewriter optimized(*summary, fast_opts);

  for (const auto& v : catalog.views()) {
    baseline.AddView(v->def);
    optimized.AddView(v->def);
  }

  std::printf(
      "scale %.1f: %d nodes, %d paths, %zu views\n"
      "%6s %12s %9s %9s %7s %7s %7s %6s %6s %5s\n",
      scale, doc->size(), summary->size(), defs.size(), "query",
      "baseline(ms)", "cold(ms)", "warm(ms)", "#rw", "domin", "memoH",
      "cost", "exec", "hit");

  double log_speedup_sum = 0;
  for (const XmarkQuery& q : XmarkQueryPatterns()) {
    Pattern qp = GetXmarkQueryPatternConjunctive(q.number);
    QueryRow row;
    row.number = q.number;

    Timer t;
    Result<std::vector<Rewriting>> base_rws = baseline.Rewrite(qp);
    row.baseline_ms = t.ElapsedMillis();
    row.baseline_rewritings = base_rws.ok() ? base_rws->size() : 0;

    RewriteStats cold_stats;
    t.Reset();
    Result<std::vector<Rewriting>> cold_rws = CachedRewrite(
        catalog.rewrite_cache(), &optimized, qp, &cold_stats);
    row.cold_ms = t.ElapsedMillis();
    row.candidates_pruned = cold_stats.candidates_pruned;
    row.plans_generated = cold_stats.plans_generated;
    row.plans_dominated = cold_stats.plans_dominated;
    row.search_truncated = cold_stats.search_truncated;
    row.memo_hits = cold_stats.containment_memo_hits;
    row.memo_misses = cold_stats.containment_memo_misses;
    row.rewritings = cold_rws.ok() ? cold_rws->size() : 0;

    // Plan verification: the optimized search must find a rewriting
    // whenever the baseline does, at no greater estimated cost. (The DP
    // search discards dominated plans, so list equality against the
    // exhaustive baseline is not the contract — cost parity is; the
    // like-for-like list comparison lives in plan_enum_test.cc.)
    if (base_rws.ok() && cold_rws.ok()) {
      row.found_when_baseline_found =
          base_rws->empty() || !cold_rws->empty();
      if (!base_rws->empty() && !cold_rws->empty()) {
        row.cost_not_worse =
            cold_rws->front().est_cost <= base_rws->front().est_cost + 1e-6;
      }
    }

    // Execution verification: cheapest optimized plan ≡ direct evaluation.
    if (cold_rws.ok() && !cold_rws->empty()) {
      row.estimated_cost = cold_rws->front().est_cost;
      Table reference = MaterializeView(qp, "Q", *doc);
      t.Reset();
      Result<Table> out = Execute(*cold_rws->front().plan, exec_catalog);
      row.exec_ms = t.ElapsedMillis();
      row.exec_matches_direct =
          out.ok() && out->EqualsIgnoringOrder(reference);
    }

    RewriteStats warm_stats;
    t.Reset();
    Result<std::vector<Rewriting>> warm_rws = CachedRewrite(
        catalog.rewrite_cache(), &optimized, qp, &warm_stats);
    row.warm_ms = t.ElapsedMillis();
    row.cache_hit_on_warm = warm_stats.rewrite_cache_hits > 0;
    bool warm_matches_cold = true;
    if (warm_rws.ok() && cold_rws.ok()) {
      warm_matches_cold = Compacts(*warm_rws) == Compacts(*cold_rws);
      row.found_when_baseline_found =
          row.found_when_baseline_found && warm_matches_cold;
    }

    log_speedup_sum +=
        std::log(row.baseline_ms / std::max(row.cold_ms, 1e-3));
    report.max_cold_ms = std::max(report.max_cold_ms, row.cold_ms);
    std::printf("q%-5d %12.1f %9.1f %9.3f %3zu/%-3zu %7zu %7zu %6s %6s %5s\n",
                row.number, row.baseline_ms, row.cold_ms, row.warm_ms,
                row.baseline_rewritings, row.rewritings, row.plans_dominated,
                row.memo_hits,
                row.found_when_baseline_found && row.cost_not_worse ? "ok"
                                                                    : "✗",
                row.exec_matches_direct ? "ok" : "BAD",
                row.cache_hit_on_warm ? "yes" : "NO");
    report.rows.push_back(row);
  }
  report.geomean_speedup =
      std::exp(log_speedup_sum / static_cast<double>(report.rows.size()));
  std::vector<std::pair<double, double>> cost_time;
  for (const QueryRow& q : report.rows) {
    if (q.estimated_cost >= 0 && q.exec_ms >= 0) {
      cost_time.push_back({q.estimated_cost, q.exec_ms});
    }
  }
  report.cost_spearman = Spearman(cost_time);
  std::printf(
      "geomean cold speedup vs in-process baseline: %.2fx; "
      "Spearman(est cost, exec ms) = %.3f over %zu queries\n\n",
      report.geomean_speedup, report.cost_spearman, cost_time.size());
  if (write_trace) {
    WriteTraceQ13(catalog, *summary, fast_opts, exec_catalog);
  }
  // Refreshes the epoch gauges for the metrics snapshot main writes last.
  std::string debug = catalog.DebugMetrics();
  (void)debug;
  return report;
}

void WriteJson(const std::vector<ScaleReport>& reports) {
  JsonWriter w;
  w.BeginObject();
  w.Key("scales");
  w.BeginArray();
  for (const ScaleReport& r : reports) {
    w.BeginObject();
    w.KV("scale", r.scale);
    w.KV("document_nodes", static_cast<int64_t>(r.document_nodes));
    w.KV("summary_paths", static_cast<int64_t>(r.summary_paths));
    w.KV("num_views", static_cast<uint64_t>(r.num_views));
    w.KV("geomean_speedup", r.geomean_speedup);
    w.KV("max_cold_ms", r.max_cold_ms);
    w.KV("cost_spearman", r.cost_spearman);
    w.Key("queries");
    w.BeginArray();
    for (const QueryRow& q : r.rows) {
      w.BeginObject();
      w.KV("query", static_cast<int64_t>(q.number));
      w.KV("baseline_ms", q.baseline_ms);
      w.KV("cold_ms", q.cold_ms);
      w.KV("warm_ms", q.warm_ms);
      w.KV("baseline_rewritings", static_cast<uint64_t>(q.baseline_rewritings));
      w.KV("rewritings", static_cast<uint64_t>(q.rewritings));
      w.KV("candidates_pruned", static_cast<uint64_t>(q.candidates_pruned));
      w.KV("plans_generated", static_cast<uint64_t>(q.plans_generated));
      w.KV("plans_dominated", static_cast<uint64_t>(q.plans_dominated));
      w.KV("estimated_cost", q.estimated_cost);
      w.KV("exec_ms", q.exec_ms);
      w.KV("search_truncated", q.search_truncated);
      w.KV("containment_memo_hits", static_cast<uint64_t>(q.memo_hits));
      w.KV("containment_memo_misses", static_cast<uint64_t>(q.memo_misses));
      w.KV("rewrite_cache_hit_on_warm", q.cache_hit_on_warm);
      w.KV("found_when_baseline_found", q.found_when_baseline_found);
      w.KV("cost_not_worse", q.cost_not_worse);
      w.KV("exec_matches_direct", q.exec_matches_direct);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  std::ofstream out("BENCH_rewriter.json", std::ios::trunc);
  out << w.str() << "\n";
}

}  // namespace
}  // namespace svx

int main(int argc, char** argv) {
  std::vector<double> scales;
  double ceiling_ms = -1;
  double min_cost_corr = -2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ceiling-ms") == 0) {
      std::optional<double> v =
          i + 1 < argc ? svx::ParseDouble(argv[++i]) : std::nullopt;
      if (!v.has_value() || *v <= 0) {
        std::fprintf(stderr, "--ceiling-ms needs a positive value\n");
        return 2;
      }
      ceiling_ms = *v;
    } else if (std::strcmp(argv[i], "--min-cost-corr") == 0) {
      std::optional<double> v =
          i + 1 < argc ? svx::ParseDouble(argv[++i]) : std::nullopt;
      if (!v.has_value() || *v < -1 || *v > 1) {
        std::fprintf(stderr, "--min-cost-corr needs a value in [-1, 1]\n");
        return 2;
      }
      min_cost_corr = *v;
    } else {
      std::optional<double> scale = svx::ParseDouble(argv[i]);
      if (!scale.has_value() || *scale <= 0) {
        std::fprintf(stderr, "bad argument: %s\n", argv[i]);
        return 2;
      }
      scales.push_back(*scale);
    }
  }
  if (scales.empty()) scales = {0.5, 1.0};
  svx::metrics::RegisterStandardMetrics();

  std::vector<svx::ScaleReport> reports;
  for (size_t i = 0; i < scales.size(); ++i) {
    reports.push_back(svx::RunScale(scales[i], /*write_trace=*/i == 0));
  }
  svx::WriteJson(reports);
  std::printf("wrote BENCH_rewriter.json\n");
  svx::EmitMetricsSnapshot("BENCH_rewriter_metrics.prom");

  bool ok = true;
  for (const svx::ScaleReport& r : reports) {
    for (const svx::QueryRow& q : r.rows) {
      // Truncated searches are deliberately never cached (a later call
      // with a bigger budget must be able to do better), so only complete
      // searches are required to hit on the warm repeat.
      ok = ok && q.found_when_baseline_found && q.cost_not_worse &&
           q.exec_matches_direct &&
           (q.cache_hit_on_warm || q.search_truncated);
      if (ceiling_ms > 0 && q.cold_ms > ceiling_ms) {
        std::printf("FAIL: scale %.1f q%d cold %.1f ms exceeds ceiling %.1f "
                    "ms\n",
                    r.scale, q.number, q.cold_ms, ceiling_ms);
        ok = false;
      }
    }
    if (min_cost_corr > -2 && r.cost_spearman < min_cost_corr) {
      std::printf("FAIL: scale %.1f cost/exec Spearman %.3f below %.3f\n",
                  r.scale, r.cost_spearman, min_cost_corr);
      ok = false;
    }
  }
  if (!ok) std::printf("bench_rewriter: FAILED verification\n");
  return ok ? 0 : 1;
}
