// Shared by the rewriting benches: the paper's §5 base views — one 2-node
// pattern per distinct summary tag, storing ID and V ("to ensure some
// rewritings exist").
#ifndef SVX_BENCH_BASE_VIEWS_H_
#define SVX_BENCH_BASE_VIEWS_H_

#include <algorithm>
#include <string>
#include <vector>

#include "src/pattern/pattern_parser.h"
#include "src/rewriting/view.h"
#include "src/summary/summary.h"
#include "src/util/strings.h"

namespace svx {

inline std::vector<ViewDef> BuildBaseTagViews(const Summary& summary) {
  std::vector<ViewDef> views;
  std::vector<std::string> tags;
  for (PathId s = 1; s < summary.size(); ++s) {
    tags.push_back(summary.label(s));
  }
  std::sort(tags.begin(), tags.end());
  tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
  int i = 0;
  for (const std::string& tag : tags) {
    views.push_back(
        {StrFormat("B%d_%s", i++, tag.c_str()),
         MustParsePattern(StrFormat("%s(//%s{id,v})",
                                    summary.label(summary.root()).c_str(),
                                    tag.c_str()))});
  }
  return views;
}

}  // namespace svx

#endif  // SVX_BENCH_BASE_VIEWS_H_
