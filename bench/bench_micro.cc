// Micro-benchmarks (google-benchmark) for the operations the experiments
// compose: summary construction, canonical model building, containment,
// satisfiability, view materialization and plan execution.
#include <benchmark/benchmark.h>

#include "src/algebra/executor.h"
#include "src/containment/containment.h"
#include "src/pattern/canonical.h"
#include "src/pattern/pattern_parser.h"
#include "src/rewriting/view.h"
#include "src/summary/summary_builder.h"
#include "src/workload/xmark.h"
#include "src/workload/xmark_queries.h"

namespace svx {
namespace {

struct World {
  std::unique_ptr<Document> doc;
  std::unique_ptr<Summary> summary;
  World() {
    XmarkOptions opts;
    opts.scale = 2.0;
    doc = GenerateXmark(opts);
    summary = SummaryBuilder::Build(doc.get());
  }
};

World& TheWorld() {
  static World* world = new World();
  return *world;
}

void BM_SummaryBuild(benchmark::State& state) {
  XmarkOptions opts;
  opts.scale = 2.0;
  std::unique_ptr<Document> doc = GenerateXmark(opts);
  for (auto _ : state) {
    // Rebuild the annotation from scratch each iteration.
    std::unique_ptr<Document> copy = GenerateXmark(opts);
    std::unique_ptr<Summary> s = SummaryBuilder::Build(copy.get());
    benchmark::DoNotOptimize(s->size());
  }
  state.SetItemsProcessed(state.iterations() * doc->size());
}
BENCHMARK(BM_SummaryBuild);

void BM_CanonicalModel(benchmark::State& state) {
  World& w = TheWorld();
  Pattern p = GetXmarkQueryPattern(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Result<std::vector<CanonicalTree>> m =
        BuildCanonicalModel(p, *w.summary);
    benchmark::DoNotOptimize(m.ok());
  }
}
BENCHMARK(BM_CanonicalModel)->Arg(1)->Arg(6)->Arg(7)->Arg(14);

void BM_SelfContainment(benchmark::State& state) {
  World& w = TheWorld();
  Pattern p = GetXmarkQueryPattern(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Result<bool> c = IsContained(p, p, *w.summary);
    benchmark::DoNotOptimize(c.ok());
  }
}
BENCHMARK(BM_SelfContainment)->Arg(1)->Arg(6)->Arg(7);

void BM_NegativeContainment(benchmark::State& state) {
  World& w = TheWorld();
  Pattern p = MustParsePattern("site(//item{id})");
  Pattern q = MustParsePattern("site(//open_auction{id})");
  for (auto _ : state) {
    Result<bool> c = IsContained(p, q, *w.summary);
    benchmark::DoNotOptimize(c.ok());
  }
}
BENCHMARK(BM_NegativeContainment);

void BM_Satisfiability(benchmark::State& state) {
  World& w = TheWorld();
  Pattern p = MustParsePattern("site(//item{id}(/name{v} //keyword))");
  for (auto _ : state) {
    Result<bool> s = IsSatisfiable(p, *w.summary);
    benchmark::DoNotOptimize(s.ok());
  }
}
BENCHMARK(BM_Satisfiability);

void BM_ViewMaterialization(benchmark::State& state) {
  World& w = TheWorld();
  Pattern p = MustParsePattern("site(//item{id}(/name{v}))");
  for (auto _ : state) {
    Table t = MaterializeView(p, "V", *w.doc);
    benchmark::DoNotOptimize(t.NumRows());
  }
}
BENCHMARK(BM_ViewMaterialization);

void BM_StructuralJoinExecution(benchmark::State& state) {
  World& w = TheWorld();
  Table items =
      MaterializeView(MustParsePattern("site(//item{id})"), "I", *w.doc);
  Table names =
      MaterializeView(MustParsePattern("site(//name{id,v})"), "N", *w.doc);
  Catalog catalog;
  catalog.Register("I", &items);
  catalog.Register("N", &names);
  PlanPtr plan = MakeStructJoin(MakeViewScan("I", items.schema()),
                                MakeViewScan("N", names.schema()), 0, 0,
                                StructAxis::kAncestor);
  for (auto _ : state) {
    Result<Table> t = Execute(*plan, catalog);
    benchmark::DoNotOptimize(t.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          (items.NumRows() + names.NumRows()));
}
BENCHMARK(BM_StructuralJoinExecution);

void BM_IdJoinExecution(benchmark::State& state) {
  World& w = TheWorld();
  Table a = MaterializeView(MustParsePattern("site(//item{id}(/name{v}))"),
                            "A", *w.doc);
  Table b = MaterializeView(
      MustParsePattern("site(//item{id}(/quantity{v}))"), "B", *w.doc);
  Catalog catalog;
  catalog.Register("A", &a);
  catalog.Register("B", &b);
  PlanPtr plan = MakeIdEqJoin(MakeViewScan("A", a.schema()),
                              MakeViewScan("B", b.schema()), 0, 0);
  for (auto _ : state) {
    Result<Table> t = Execute(*plan, catalog);
    benchmark::DoNotOptimize(t.ok());
  }
}
BENCHMARK(BM_IdJoinExecution);

}  // namespace
}  // namespace svx

BENCHMARK_MAIN();
