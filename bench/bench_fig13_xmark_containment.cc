// Figure 13: XMark pattern containment (§5).
//   Top:    for the 20 XMark query patterns, the canonical model size
//           |modS(p)| and the time of the self-containment test p ⊆S p on
//           the XMark summary. The paper's headline: models are small —
//           far below the |S|^|p| bound — except query 7 (204 trees in the
//           paper), whose variables lack structural relationships.
//   Bottom: containment time for synthetic patterns of 3..13 nodes with
//           r = 1, 2, 3 return nodes (labels item/name/initial fixed),
//           positive vs negative cases; positive grows with n, negative
//           exits early and stays flat.
#include <cstdio>

#include "bench/containment_sweep.h"
#include "src/pattern/canonical.h"
#include "src/summary/summary_builder.h"
#include "src/workload/xmark.h"
#include "src/workload/xmark_queries.h"

namespace svx {
namespace {

void Run() {
  XmarkOptions opts;
  opts.scale = 10.0;  // the paper uses its largest (548-node) summary
  std::unique_ptr<Document> doc = GenerateXmark(opts);
  std::unique_ptr<Summary> summary = SummaryBuilder::Build(doc.get());
  std::printf("=== Figure 13 (top): XMark query pattern containment ===\n");
  std::printf("XMark summary: %d nodes\n\n", summary->size());
  std::printf("%6s %8s %14s %16s\n", "query", "|modS|", "build(ms)",
              "self-cont(ms)");

  for (const XmarkQuery& q : XmarkQueryPatterns()) {
    Pattern p = GetXmarkQueryPattern(q.number);
    Timer t;
    Result<std::vector<CanonicalTree>> model =
        BuildCanonicalModel(p, *summary);
    double build_ms = t.ElapsedMillis();
    if (!model.ok()) {
      std::printf("q%-5d %s\n", q.number, model.status().ToString().c_str());
      continue;
    }
    t.Reset();
    Result<bool> self = IsContained(p, p, *summary);
    double cont_ms = t.ElapsedMillis();
    std::printf("q%-5d %8zu %14.2f %16.2f%s\n", q.number, model->size(),
                build_ms, cont_ms,
                self.ok() && *self ? "" : "  (FAILED SELF-CONTAINMENT)");
  }

  std::printf(
      "\n=== Figure 13 (bottom): synthetic pattern containment sweep ===\n");
  std::printf(
      "parameters: f=3, P(*)=0.1, P(pred)=0.2 (10 values), P(//)=0.5, "
      "P(opt)=0.5;\nreturn labels fixed to item/name/initial\n");
  PrintSweepHeader();
  for (int n = 3; n <= 13; n += 2) {
    for (int r = 1; r <= 3; ++r) {
      SweepCell cell = RunSweepCell(*summary, n, r, /*per_cell=*/10,
                                    /*p_optional=*/0.5,
                                    {"item", "name", "initial"},
                                    /*seed=*/1000 + n * 10 + r);
      PrintSweepCell(cell);
    }
  }
  std::printf(
      "\nExpected shape (paper): |modS| far below |S|^|p|, q7 dominates; "
      "positive tests grow\nwith n and track |modS|, negative tests exit "
      "early and are much faster.\n");
}

}  // namespace
}  // namespace svx

int main() {
  svx::Run();
  return 0;
}
