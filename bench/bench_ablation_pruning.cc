// Ablation B (DESIGN.md): the §3.3 pruning propositions. Prop 3.4 discards
// views unrelated to the query before the search; Prop 3.5 refuses join
// results whose pattern coincides with a child's. Both are toggled on the
// Figure 15 workload (a subset of queries, to keep the ablation fast).
#include <cstdio>

#include "src/pattern/pattern_parser.h"
#include "src/rewriting/rewriter.h"
#include "src/summary/summary_builder.h"
#include "src/util/strings.h"
#include "src/workload/pattern_generator.h"
#include "src/workload/xmark.h"
#include "src/workload/xmark_queries.h"

namespace svx {
namespace {

struct Config {
  const char* name;
  bool prune_views;
  bool prune_same_pattern;
};

void Run() {
  XmarkOptions opts;
  opts.scale = 10.0;
  std::unique_ptr<Document> doc = GenerateXmark(opts);
  std::unique_ptr<Summary> summary = SummaryBuilder::Build(doc.get());

  // The Figure 15 view mix, reduced (per-tag base views + 40 random views).
  std::vector<ViewDef> views;
  std::vector<std::string> tags;
  for (PathId s = 1; s < summary->size(); ++s) {
    tags.push_back(summary->label(s));
  }
  std::sort(tags.begin(), tags.end());
  tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
  int base = 0;
  for (const std::string& tag : tags) {
    views.push_back(
        {StrFormat("B%d_%s", base++, tag.c_str()),
         MustParsePattern(StrFormat("site(//%s{id,v})", tag.c_str()))});
  }
  Rng rng(99);
  PatternGenOptions gen;
  gen.num_nodes = 3;
  gen.num_return = 1;
  gen.p_pred = 0;
  for (int i = 0; i < 40; ++i) {
    Result<Pattern> p = GeneratePattern(*summary, gen, &rng);
    if (!p.ok()) continue;
    for (PatternNodeId n = 1; n < p->size(); ++n) {
      p->mutable_node(n).attrs =
          rng.Bernoulli(0.75) ? (kAttrId | kAttrValue) : 0;
    }
    if (p->Arity() == 0) continue;
    views.push_back({StrFormat("R%d", i), std::move(*p)});
  }

  const Config configs[] = {
      {"all pruning on", true, true},
      {"no Prop 3.4 (view pruning)", false, true},
      {"no Prop 3.5 (same-pattern)", true, false},
      {"no pruning", false, false},
  };
  const int queries[] = {1, 2, 5, 6, 13, 17, 18};

  std::printf("=== Ablation B: rewriting pruning (Props 3.4 / 3.5) ===\n");
  std::printf("views: %zu; queries: 7 of the XMark set\n\n", views.size());
  std::printf("%-30s %10s %12s %12s %10s\n", "configuration", "total(ms)",
              "candidates", "equiv.tests", "results");

  for (const Config& cfg : configs) {
    double total_ms = 0;
    size_t candidates = 0;
    size_t tests = 0;
    size_t results = 0;
    for (int qn : queries) {
      // Fixed search budget: the fair comparison is how much the search
      // achieves within it, not time-to-early-stop.
      RewriterOptions ropts;
      ropts.max_results = 50;
      ropts.max_plan_views = 2;
      ropts.max_candidates = 2500;
      ropts.prune_views = cfg.prune_views;
      ropts.prune_same_pattern = cfg.prune_same_pattern;
      ropts.time_budget_ms = 5000;
      Rewriter rewriter(*summary, ropts);
      for (const ViewDef& v : views) rewriter.AddView(v);
      RewriteStats stats;
      (void)rewriter.Rewrite(GetXmarkQueryPattern(qn), &stats);
      total_ms += stats.total_ms;
      candidates += stats.candidates_built + stats.join_candidates;
      tests += stats.equivalence_tests;
      results += stats.results;
    }
    std::printf("%-30s %10.1f %12zu %12zu %10zu\n", cfg.name, total_ms,
                candidates, tests, results);
  }
  std::printf(
      "\nShapes to check: within a fixed search budget, pruning finds at "
      "least as many\nrewritings while wasting fewer candidates/tests "
      "(Props 3.4/3.5 discard only\nredundant work).\n");
}

}  // namespace
}  // namespace svx

int main() {
  svx::Run();
  return 0;
}
