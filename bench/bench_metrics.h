// Shared bench exposition: dump the process metric registry to a file.
#ifndef SVX_BENCH_BENCH_METRICS_H_
#define SVX_BENCH_BENCH_METRICS_H_

#include <cstdio>
#include <fstream>
#include <string>

#include "src/observability/metrics.h"

namespace svx {

/// Writes the process metric registry as Prometheus text to `path`.
/// RegisterStandardMetrics() first, so the snapshot names every standard
/// metric across all domains (rewrite, containment, maintenance,
/// epoch/serving) even when this bench left some of them at zero. Call
/// last, after ViewCatalog::DebugMetrics() has refreshed the epoch gauges.
inline void EmitMetricsSnapshot(const std::string& path) {
  metrics::RegisterStandardMetrics();
  std::ofstream out(path, std::ios::trunc);
  out << MetricRegistry::Global().RenderPrometheusText();
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace svx

#endif  // SVX_BENCH_BENCH_METRICS_H_
