// Incremental maintenance benchmark: apply randomized subtree updates to an
// XMark document and maintain a view catalog through ApplyUpdate, versus
// rematerializing every extent from scratch after each update. Reports
// per-(view, update-kind) scenario timings and writes machine-readable
// BENCH_maintenance.json into the working directory. Every scenario also
// verifies the maintained extent is byte-identical to rematerialization.
//
// With --shards=N (N > 1) the stream maintains a sync ShardedCatalog
// instead, and verification merges the per-shard extent slices.
//
//   $ ./build/bench_maintenance [scale] [updates-per-scenario] [--shards=N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_metrics.h"
#include "src/pattern/pattern_parser.h"
#include "src/summary/summary_builder.h"
#include "src/util/json_writer.h"
#include "src/util/rng.h"
#include "src/util/strings.h"
#include "src/util/timer.h"
#include "src/viewstore/extent_io.h"
#include "src/viewstore/sharded_catalog.h"
#include "src/viewstore/view_catalog.h"
#include "src/workload/xmark.h"
#include "src/xml/builder.h"
#include "src/xml/update.h"

namespace svx {
namespace {

struct ViewSpec {
  const char* name;
  const char* pattern;
};

const ViewSpec kViews[] = {
    {"item_names", "site(//item{id}(/name{id,v}))"},
    {"item_keywords_opt", "site(//item{id}(?//keyword{v}))"},
    {"item_keywords_nested", "site(//item{id}(n//keyword{id,v}))"},
    {"person_content", "site(//person{id,c})"},
    {"auction_bidders", "site(//open_auction{id}(//bidder{id}(/increase{v})))"},
};

enum class UpdateKind { kLeafInsert, kSubtreeInsert, kSubtreeDelete };

const char* UpdateKindName(UpdateKind k) {
  switch (k) {
    case UpdateKind::kLeafInsert:
      return "leaf-insert";
    case UpdateKind::kSubtreeInsert:
      return "subtree-insert";
    case UpdateKind::kSubtreeDelete:
      return "subtree-delete";
  }
  return "?";
}

std::unique_ptr<Document> MustParseTree(const char* text) {
  Result<std::unique_ptr<Document>> r = ParseTreeNotation(text);
  if (!r.ok()) {
    std::fprintf(stderr, "bad tree: %s\n", r.status().ToString().c_str());
    std::abort();
  }
  return std::move(r).value();
}

/// Picks an update of the given kind against `doc`; deterministic per rng.
Result<UpdateResult> MakeUpdate(const Document& doc, UpdateKind kind,
                                Rng* rng) {
  switch (kind) {
    case UpdateKind::kLeafInsert: {
      NodeIndex n = static_cast<NodeIndex>(
          rng->Uniform(0, static_cast<int64_t>(doc.size()) - 1));
      return InsertSubtree(doc, doc.ord_path(n), *MustParseTree("keyword=k"));
    }
    case UpdateKind::kSubtreeInsert: {
      NodeIndex n = static_cast<NodeIndex>(
          rng->Uniform(0, static_cast<int64_t>(doc.size()) - 1));
      return InsertSubtree(
          doc, doc.ord_path(n),
          *MustParseTree("item(name=fresh description(text=t keyword=new) "
                         "incategory=c payment=cash)"));
    }
    case UpdateKind::kSubtreeDelete: {
      // A random non-root subtree of bounded size (≤ 1% of the document).
      int32_t cap = std::max<int32_t>(doc.size() / 100, 4);
      for (int attempt = 0; attempt < 64; ++attempt) {
        NodeIndex n = static_cast<NodeIndex>(
            rng->Uniform(1, static_cast<int64_t>(doc.size()) - 1));
        if (doc.subtree_end(n) - n <= cap) {
          return DeleteSubtree(doc, doc.ord_path(n));
        }
      }
      return Status::NotFound("no deletable subtree under the size cap");
    }
  }
  return Status::Internal("unreachable");
}

struct ScenarioRow {
  std::string view;
  std::string update;
  int updates = 0;
  int32_t doc_nodes = 0;
  double avg_region = 0;     // nodes touched per update
  double maintain_ms = 0;    // ApplyUpdate total
  double remat_ms = 0;       // rematerialize-per-update total
  double speedup = 0;
  long long inserted = 0;
  long long deleted = 0;
  int touched = 0;  // extents changed (incrementally or by rebuild)
  int shared = 0;   // extents carried between epochs untouched
  int rebuilds = 0;
  bool identical = false;
};

ScenarioRow RunScenario(const ViewSpec& spec, UpdateKind kind, double scale,
                        int updates) {
  ScenarioRow row;
  row.view = spec.name;
  row.update = UpdateKindName(kind);
  row.updates = updates;

  XmarkOptions opts;
  opts.scale = scale;
  std::unique_ptr<Document> doc = GenerateXmark(opts);
  row.doc_nodes = doc->size();

  ViewDef def{spec.name, MustParsePattern(spec.pattern)};
  ViewCatalog catalog;  // no store dir: time pure in-memory maintenance
  Status s = catalog.Materialize(def, *doc);
  if (!s.ok()) {
    std::fprintf(stderr, "materialize: %s\n", s.ToString().c_str());
    return row;
  }

  Rng rng(1234);
  Timer t;
  int64_t region_total = 0;
  for (int i = 0; i < updates; ++i) {
    Result<UpdateResult> r = MakeUpdate(*doc, kind, &rng);
    if (!r.ok()) continue;
    region_total += r->delta.region_size;

    // Maintenance path.
    MaintenanceStats ms;
    t.Reset();
    Status apply = catalog.ApplyUpdate(r->delta, &ms);
    row.maintain_ms += t.ElapsedMillis();
    if (!apply.ok()) {
      std::fprintf(stderr, "apply: %s\n", apply.ToString().c_str());
      return row;
    }
    row.inserted += ms.tuples_inserted;
    row.deleted += ms.tuples_deleted;
    row.touched += ms.views_touched;
    row.shared += ms.views_shared;
    row.rebuilds += ms.views_rebuilt;

    // Rematerialization baseline: the same end state built from scratch
    // (materialize + canonicalize + statistics, as the fallback path does).
    t.Reset();
    ViewCatalog fresh;
    Status remat = fresh.Materialize(def, *r->doc);
    row.remat_ms += t.ElapsedMillis();
    if (!remat.ok()) return row;

    doc = std::move(r->doc);
    if (i + 1 == updates) {
      row.identical =
          SerializeExtent(catalog.Find(spec.name)->extent()) ==
              SerializeExtent(fresh.Find(spec.name)->extent()) &&
          catalog.Find(spec.name)->stats == fresh.Find(spec.name)->stats;
    }
  }
  row.avg_region = updates > 0
                       ? static_cast<double>(region_total) / updates
                       : 0;
  row.speedup = row.maintain_ms > 0 ? row.remat_ms / row.maintain_ms : 0;
  return row;
}

/// The sharded variant of RunScenario: the same update stream maintained
/// through a sync ShardedCatalog, verified by merging the per-shard slices
/// (or reading the global extent for unpartitionable views) against
/// rematerialization. Maintenance stats stay zero — the sharded API does
/// not surface them per update.
ScenarioRow RunScenarioSharded(const ViewSpec& spec, UpdateKind kind,
                               double scale, int updates, int shards) {
  ScenarioRow row;
  row.view = spec.name;
  row.update = UpdateKindName(kind);
  row.updates = updates;

  XmarkOptions opts;
  opts.scale = scale;
  std::shared_ptr<Document> doc(GenerateXmark(opts));
  std::shared_ptr<Summary> summary(SummaryBuilder::Build(doc.get()));
  row.doc_nodes = doc->size();

  ViewDef def{spec.name, MustParsePattern(spec.pattern)};
  ShardedCatalogOptions copts;
  copts.num_shards = shards;
  Result<std::unique_ptr<ShardedCatalog>> catalog =
      ShardedCatalog::Create(copts, doc, summary);
  if (!catalog.ok()) {
    std::fprintf(stderr, "create: %s\n", catalog.status().ToString().c_str());
    return row;
  }
  Status s = (*catalog)->Materialize(def, *doc);
  if (!s.ok()) {
    std::fprintf(stderr, "materialize: %s\n", s.ToString().c_str());
    return row;
  }

  auto merged_extent = [&]() -> Table {
    if ((*catalog)->shard_catalog(0)->Find(spec.name) == nullptr) {
      return (*catalog)->global_catalog()->Find(spec.name)->extent();
    }
    const StoredView* first = (*catalog)->shard_catalog(0)->Find(spec.name);
    Table merged(first->extent().schema());
    for (int i = 0; i < (*catalog)->num_shards(); ++i) {
      const StoredView* v = (*catalog)->shard_catalog(i)->Find(spec.name);
      for (const Tuple& t : v->extent().rows()) merged.AddRow(t);
    }
    merged.SortRowsCanonical();
    return merged;
  };

  Rng rng(1234);
  Timer t;
  int64_t region_total = 0;
  for (int i = 0; i < updates; ++i) {
    Result<UpdateResult> r = MakeUpdate(*doc, kind, &rng);
    if (!r.ok()) continue;
    region_total += r->delta.region_size;

    std::shared_ptr<Document> next(std::move(r->doc));
    std::shared_ptr<Summary> next_summary(
        SummaryBuilder::Build(next.get()));
    t.Reset();
    Status apply = (*catalog)->ApplyUpdate(r->delta, next, next_summary);
    row.maintain_ms += t.ElapsedMillis();
    if (!apply.ok()) {
      std::fprintf(stderr, "apply: %s\n", apply.ToString().c_str());
      return row;
    }

    t.Reset();
    ViewCatalog fresh;
    Status remat = fresh.Materialize(def, *next);
    row.remat_ms += t.ElapsedMillis();
    if (!remat.ok()) return row;

    doc = std::move(next);
    if (i + 1 == updates) {
      row.identical = SerializeExtent(merged_extent()) ==
                      SerializeExtent(fresh.Find(spec.name)->extent());
    }
  }
  row.avg_region = updates > 0
                       ? static_cast<double>(region_total) / updates
                       : 0;
  row.speedup = row.maintain_ms > 0 ? row.remat_ms / row.maintain_ms : 0;
  return row;
}

void Run(double scale, int updates, int shards) {
  std::printf("=== Incremental maintenance vs rematerialization%s ===\n",
              shards > 1 ? " (sharded)" : "");
  std::vector<ScenarioRow> rows;
  std::printf("%-22s %-15s %7s %9s %12s %12s %8s %6s %5s\n", "view", "update",
              "nodes", "avg_region", "maintain(ms)", "remat(ms)", "speedup",
              "ident", "rblt");
  for (const ViewSpec& spec : kViews) {
    for (UpdateKind kind :
         {UpdateKind::kLeafInsert, UpdateKind::kSubtreeInsert,
          UpdateKind::kSubtreeDelete}) {
      ScenarioRow row =
          shards > 1 ? RunScenarioSharded(spec, kind, scale, updates, shards)
                     : RunScenario(spec, kind, scale, updates);
      std::printf("%-22s %-15s %7d %9.1f %12.2f %12.2f %7.1fx %6s %5d\n",
                  row.view.c_str(), row.update.c_str(), row.doc_nodes,
                  row.avg_region, row.maintain_ms, row.remat_ms, row.speedup,
                  row.identical ? "yes" : "NO", row.rebuilds);
      rows.push_back(std::move(row));
    }
  }

  int small_update_wins = 0;
  for (const ScenarioRow& r : rows) {
    bool small = r.doc_nodes > 0 &&
                 r.avg_region <= 0.01 * static_cast<double>(r.doc_nodes);
    if (small && r.identical && r.speedup > 1.0) ++small_update_wins;
  }
  std::printf("\nscenarios where maintenance beats rematerialization on "
              "small (≤1%%) updates: %d / %zu\n",
              small_update_wins, rows.size());

  JsonWriter w;
  w.BeginObject();
  w.KV("scale", scale);
  w.KV("shards", static_cast<int64_t>(shards));
  w.KV("updates_per_scenario", static_cast<int64_t>(updates));
  w.KV("small_update_wins", static_cast<int64_t>(small_update_wins));
  w.Key("scenarios");
  w.BeginArray();
  for (const ScenarioRow& r : rows) {
    w.BeginObject();
    w.KV("view", r.view);
    w.KV("update", r.update);
    w.KV("updates", static_cast<int64_t>(r.updates));
    w.KV("doc_nodes", static_cast<int64_t>(r.doc_nodes));
    w.KV("avg_region_nodes", r.avg_region);
    w.KV("maintain_ms", r.maintain_ms);
    w.KV("remat_ms", r.remat_ms);
    w.KV("speedup", r.speedup);
    w.KV("tuples_inserted", static_cast<int64_t>(r.inserted));
    w.KV("tuples_deleted", static_cast<int64_t>(r.deleted));
    w.KV("views_touched", static_cast<int64_t>(r.touched));
    w.KV("views_shared", static_cast<int64_t>(r.shared));
    w.KV("full_rebuilds", static_cast<int64_t>(r.rebuilds));
    w.KV("identical", r.identical);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  std::ofstream out("BENCH_maintenance.json", std::ios::trunc);
  out << w.str() << "\n";
  out.close();
  std::printf("wrote BENCH_maintenance.json\n");
  EmitMetricsSnapshot("BENCH_maintenance_metrics.prom");
}

}  // namespace
}  // namespace svx

int main(int argc, char** argv) {
  double scale = 1.0;
  int64_t updates = 20;
  int shards = 1;
  int pos = 0;
  auto parse_shards = [&shards](const char* arg) {
    std::optional<int64_t> v = svx::ParseInt64(arg);
    if (!v.has_value() || *v < 1 || *v > 256) {
      std::fprintf(stderr, "bad shard count: %s\n", arg);
      return false;
    }
    shards = static_cast<int>(*v);
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      if (!parse_shards(argv[i] + 9)) return 2;
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      if (!parse_shards(argv[++i])) return 2;
    } else if (pos == 0) {
      std::optional<double> v = svx::ParseDouble(argv[i]);
      if (!v.has_value()) {
        std::fprintf(stderr, "bad scale: %s\n", argv[i]);
        return 2;
      }
      scale = *v;
      ++pos;
    } else if (pos == 1) {
      std::optional<int64_t> v = svx::ParseInt64(argv[i]);
      if (!v.has_value()) {
        std::fprintf(stderr, "bad update count: %s\n", argv[i]);
        return 2;
      }
      updates = *v;
      ++pos;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      return 2;
    }
  }
  svx::Run(scale, static_cast<int>(updates), shards);
  return 0;
}
