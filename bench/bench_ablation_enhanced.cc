// Ablation A (DESIGN.md): the effect of enhanced summaries (§4.1). Strong
// edges enlarge canonical trees (closure cost) but enable equivalences that
// plain summaries cannot justify — the §1 "Summary-based optimization"
// scenario: if every item has a mail descendant, a view over items lacking
// the mail test can be used directly.
#include <cstdio>

#include "src/containment/containment.h"
#include "src/pattern/pattern_parser.h"
#include "src/summary/summary_builder.h"
#include "src/util/timer.h"
#include "src/workload/xmark.h"
#include "src/workload/xmark_queries.h"

namespace svx {
namespace {

void Run() {
  XmarkOptions opts;
  opts.scale = 10.0;
  std::unique_ptr<Document> doc = GenerateXmark(opts);
  std::unique_ptr<Summary> summary = SummaryBuilder::Build(doc.get());
  std::printf("=== Ablation A: enhanced summaries (strong edges) ===\n");
  std::printf("summary: %d nodes, %d strong edges, %d one-to-one\n\n",
              summary->size(), summary->num_strong_edges(),
              summary->num_one_to_one_edges());

  // 1. Equivalences enabled only by strong edges.
  struct Case {
    const char* p;
    const char* q;
    const char* what;
  };
  const Case cases[] = {
      {"site(//item{id})", "site(//item{id}(/name))",
       "item ≡ item-with-name (name is a strong child)"},
      {"site(//open_auction{id})",
       "site(//open_auction{id}(/current /initial))",
       "auction ≡ auction-with-required-fields"},
      {"site(//closed_auction{id}(/price{v}))",
       "site(//closed_auction{id}(/annotation /price{v}))",
       "closed auction keeps its annotation"},
  };
  std::printf("%-55s %10s %10s\n", "equivalence", "enhanced", "plain");
  for (const Case& c : cases) {
    ContainmentOptions enhanced;
    ContainmentOptions plain;
    plain.model.use_strong_edges = false;
    Result<bool> with = AreEquivalent(MustParsePattern(c.p),
                                      MustParsePattern(c.q), *summary,
                                      enhanced);
    Result<bool> without = AreEquivalent(MustParsePattern(c.p),
                                         MustParsePattern(c.q), *summary,
                                         plain);
    std::printf("%-55s %10s %10s\n", c.what,
                with.ok() && *with ? "yes" : "no",
                without.ok() && *without ? "yes" : "no");
  }

  // 2. Cost: self-containment of the 20 XMark patterns with/without the
  // strong-edge closure.
  double with_ms = 0;
  double without_ms = 0;
  for (const XmarkQuery& q : XmarkQueryPatterns()) {
    Pattern p = GetXmarkQueryPattern(q.number);
    ContainmentOptions enhanced;
    Timer t;
    (void)IsContained(p, p, *summary, enhanced);
    with_ms += t.ElapsedMillis();
    ContainmentOptions plain;
    plain.model.use_strong_edges = false;
    t.Reset();
    (void)IsContained(p, p, *summary, plain);
    without_ms += t.ElapsedMillis();
  }
  std::printf(
      "\nself-containment of the 20 XMark patterns: enhanced %.1f ms, plain "
      "%.1f ms\n(the closure grows canonical trees; the equivalences above "
      "are what it buys)\n",
      with_ms, without_ms);
}

}  // namespace
}  // namespace svx

int main() {
  svx::Run();
  return 0;
}
