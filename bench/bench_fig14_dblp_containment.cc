// Figure 14: DBLP pattern containment (§5). The same synthetic sweep as
// Figure 13 run on the DBLP'05 summary. Shapes to reproduce:
//   * containment on DBLP is several times faster than on XMark (the paper
//     reports ~4x): the XMark summary's many formatting-tag nodes (bold,
//     keyword, emph) inflate the canonical models of random patterns, while
//     DBLP's vocabulary is flatter;
//   * optional edges slow containment by ~2x versus the conjunctive case —
//     far below the exponential worst case of §4.3.
#include <cstdio>

#include "bench/containment_sweep.h"
#include "src/summary/summary_builder.h"
#include "src/workload/dblp.h"
#include "src/workload/xmark.h"

namespace svx {
namespace {

double SweepAverage(const Summary& summary, double p_optional,
                    const std::vector<std::string>& labels, uint64_t seed) {
  double total = 0;
  int cells = 0;
  PrintSweepHeader();
  for (int n = 3; n <= 13; n += 2) {
    for (int r = 1; r <= 3; ++r) {
      SweepCell cell = RunSweepCell(summary, n, r, /*per_cell=*/10,
                                    p_optional, labels, seed + n * 10 + r);
      PrintSweepCell(cell);
      if (cell.positives > 0) {
        total += cell.pos_ms_avg;
        ++cells;
      }
    }
  }
  return cells > 0 ? total / cells : 0;
}

void Run() {
  DblpOptions d05;
  d05.per_type = 60;
  d05.snapshot_2005 = true;
  std::unique_ptr<Document> dblp = GenerateDblp(d05);
  std::unique_ptr<Summary> dblp_summary = SummaryBuilder::Build(dblp.get());

  XmarkOptions x;
  x.scale = 10.0;
  std::unique_ptr<Document> xmark = GenerateXmark(x);
  std::unique_ptr<Summary> xmark_summary = SummaryBuilder::Build(xmark.get());

  std::printf("=== Figure 14: DBLP'05 pattern containment ===\n");
  std::printf("DBLP summary: %d nodes (XMark: %d)\n\n", dblp_summary->size(),
              xmark_summary->size());

  // The same seed in both DBLP sweeps: the generator draws the optional
  // flag unconditionally, so the two runs test structurally identical
  // patterns differing only in edge optionality.
  std::printf("--- DBLP sweep, 50%% optional edges ---\n");
  double dblp_opt =
      SweepAverage(*dblp_summary, 0.5, {"author", "title", "year"}, 2000);

  std::printf("\n--- DBLP sweep, 0%% optional edges (conjunctive) ---\n");
  double dblp_conj =
      SweepAverage(*dblp_summary, 0.0, {"author", "title", "year"}, 2000);

  std::printf("\n--- XMark sweep, 50%% optional edges (comparison) ---\n");
  double xmark_opt =
      SweepAverage(*xmark_summary, 0.5, {"item", "name", "initial"}, 2000);

  std::printf("\n=== Summary of shapes ===\n");
  std::printf("avg positive-test ms: DBLP(opt)=%.3f DBLP(conj)=%.3f "
              "XMark(opt)=%.3f\n", dblp_opt, dblp_conj, xmark_opt);
  if (dblp_opt > 0) {
    std::printf("XMark / DBLP ratio: %.1fx (paper: ~4x)\n",
                xmark_opt / dblp_opt);
  }
  if (dblp_conj > 0) {
    std::printf("optional / conjunctive ratio on DBLP: %.1fx (paper: ~2x)\n",
                dblp_opt / dblp_conj);
  }
}

}  // namespace
}  // namespace svx

int main() {
  svx::Run();
  return 0;
}
