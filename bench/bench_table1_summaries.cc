// Table 1: sample XML documents and their summaries — document size, |S|,
// number of strong edges nS and of one-to-one edges n1 (§5 "Containment",
// first experiment). Documents are the synthetic shape-alikes described in
// DESIGN.md; the paper's observations to reproduce:
//   * summaries are small (tens to hundreds of nodes, not thousands),
//   * strong / one-to-one edges are frequent,
//   * the summary grows only marginally as the document grows
//     (XMark11 -> XMark233: +10% in the paper).
#include <cstdio>
#include <memory>

#include "src/summary/summary_builder.h"
#include "src/util/timer.h"
#include "src/workload/corpora.h"
#include "src/workload/dblp.h"
#include "src/workload/xmark.h"

namespace svx {
namespace {

void Row(const char* name, Document* doc) {
  Timer t;
  std::unique_ptr<Summary> s = SummaryBuilder::Build(doc);
  std::printf("%-14s %10d %8d %8d %8d %10.1f\n", name, doc->size(), s->size(),
              s->num_strong_edges(), s->num_one_to_one_edges(),
              t.ElapsedMillis());
}

void Run() {
  std::printf("=== Table 1: sample documents and their summaries ===\n");
  std::printf("%-14s %10s %8s %8s %8s %10s\n", "Doc.", "nodes", "|S|", "nS",
              "n1", "build(ms)");

  std::unique_ptr<Document> shakespeare = GenerateShakespeareLike(5);
  Row("Shakespeare", shakespeare.get());

  std::unique_ptr<Document> nasa = GenerateNasaLike(40);
  Row("Nasa", nasa.get());

  std::unique_ptr<Document> swissprot = GenerateSwissProtLike(60);
  Row("SwissProt", swissprot.get());

  XmarkOptions x1;
  x1.scale = 1.0;
  std::unique_ptr<Document> xmark11 = GenerateXmark(x1);
  Row("XMark11", xmark11.get());

  XmarkOptions x10;
  x10.scale = 10.0;
  std::unique_ptr<Document> xmark111 = GenerateXmark(x10);
  Row("XMark111", xmark111.get());

  XmarkOptions x21;
  x21.scale = 21.0;
  std::unique_ptr<Document> xmark233 = GenerateXmark(x21);
  Row("XMark233", xmark233.get());

  DblpOptions d02;
  d02.per_type = 40;
  std::unique_ptr<Document> dblp02 = GenerateDblp(d02);
  Row("DBLP'02", dblp02.get());

  DblpOptions d05;
  d05.per_type = 80;
  d05.snapshot_2005 = true;
  std::unique_ptr<Document> dblp05 = GenerateDblp(d05);
  Row("DBLP'05", dblp05.get());

  std::printf(
      "\nPaper reference (Table 1):  |S| = 58 / 24 / 117 / 536 / 548 / 548 / "
      "145 / 159;\nXMark11->XMark233 grows the summary by only ~10%% while "
      "the document grows 21x.\n");
}

}  // namespace
}  // namespace svx

int main() {
  svx::Run();
  return 0;
}
