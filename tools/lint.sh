#!/usr/bin/env bash
# Single entry point for the repo's static-analysis gates. Runs, in order:
#
#   1. clang-tidy over every svx translation unit (.clang-tidy config,
#      findings are errors) — skipped with a notice when clang-tidy is not
#      installed, since the toolchain may be GCC-only.
#   2. A Clang -Werror=thread-safety build — the compile-time race
#      detection gate over the annotated concurrent classes — skipped with
#      a notice when clang is not installed.
#   3. Negative-compile probes: one dropped [[nodiscard]] Status and (under
#      clang) one thread-safety violation, each of which MUST fail to
#      compile. This is what keeps the gates honest: a misconfigured flag
#      that silently stopped enforcing would fail here, not ship.
#
# Exit code 0 means every gate that could run passed. CI runs this with
# clang installed, so all three stages are exercised there; locally it
# degrades to whatever the host toolchain supports.
#
# Usage: tools/lint.sh [--probes-only] [build-dir]   (default: build-lint)
# --probes-only runs just stage 3 — for CI jobs that already ran the tidy
# and thread-safety builds and only need the gates proven honest.
set -u

cd "$(dirname "$0")/.."
PROBES_ONLY=0
if [ "${1:-}" = "--probes-only" ]; then
  PROBES_ONLY=1
  shift
fi
BUILD_DIR="${1:-build-lint}"
FAILURES=0

note()  { printf '\n== %s\n' "$*"; }
fail()  { printf 'FAIL: %s\n' "$*"; FAILURES=$((FAILURES + 1)); }
pass()  { printf 'ok: %s\n' "$*"; }

# ---- 1. clang-tidy sweep ------------------------------------------------
note "clang-tidy sweep"
if [ "$PROBES_ONLY" = 1 ]; then
  echo "skip: --probes-only"
elif command -v clang-tidy >/dev/null 2>&1; then
  if cmake -B "$BUILD_DIR" -S . -DENABLE_CLANG_TIDY=ON >/dev/null &&
     cmake --build "$BUILD_DIR" -j "$(nproc)"; then
    pass "clang-tidy build clean"
  else
    fail "clang-tidy build reported findings (see output above)"
  fi
else
  echo "skip: clang-tidy not installed"
fi

# ---- 2. Clang thread-safety build --------------------------------------
note "clang -Werror=thread-safety build"
CLANG_CXX=""
for c in clang++ clang++-19 clang++-18 clang++-17 clang++-16 clang++-15 \
         clang++-14; do
  if command -v "$c" >/dev/null 2>&1; then CLANG_CXX="$c"; break; fi
done
if [ -z "$CLANG_CXX" ]; then
  echo "skip: clang++ not installed"
elif [ "$PROBES_ONLY" = 1 ]; then
  echo "skip: --probes-only"
elif cmake -B "$BUILD_DIR-tsa" -S . -DCMAKE_CXX_COMPILER="$CLANG_CXX" \
       >/dev/null &&
     cmake --build "$BUILD_DIR-tsa" -j "$(nproc)"; then
  pass "thread-safety analysis clean"
else
  fail "thread-safety analysis reported violations (see output above)"
fi

# ---- 3. Negative-compile probes ----------------------------------------
# Each probe is code the gates exist to reject; if it compiles, the gate
# has silently stopped enforcing.
note "negative-compile probes"
PROBE_DIR="$(mktemp -d)"
trap 'rm -rf "$PROBE_DIR"' EXIT

cat > "$PROBE_DIR/drop_status.cc" <<'EOF'
#include "src/util/status.h"
svx::Status Make() { return svx::Status::OK(); }
void Caller() { Make(); }  // dropped [[nodiscard]] Status: must not compile
EOF
if ${CXX:-c++} -std=c++20 -I. -Wall -Werror=unused-result -fsyntax-only \
     "$PROBE_DIR/drop_status.cc" 2>/dev/null; then
  fail "a dropped Status compiled — [[nodiscard]] enforcement is off"
else
  pass "dropped Status rejected"
fi

# Positive probe: metric call sites must keep compiling when every metric is
# compiled out (-DSVX_METRICS_DISABLED, the CI overhead gate's baseline
# build). If the no-op inline bodies drift out of sync with the real API,
# this catches it without a full CMake reconfigure.
cat > "$PROBE_DIR/metrics_off.cc" <<'EOF'
#include "src/observability/metrics.h"
void Touch() {
  svx::metrics::RewriteCalls()->Add(1);
  svx::metrics::EpochCurrent()->Set(3);
  svx::metrics::RewriteLatencyUs()->Observe(42);
  svx::ScopedLatency timed(svx::metrics::ExecutorLatencyUs());
  svx::metrics::RegisterStandardMetrics();
}
EOF
if ${CXX:-c++} -std=c++20 -I. -Wall -Werror=unused-result \
     -DSVX_METRICS_DISABLED -fsyntax-only "$PROBE_DIR/metrics_off.cc"; then
  pass "metrics call sites compile with SVX_METRICS_DISABLED"
else
  fail "metrics kill switch broke a call site (no-op stubs out of sync)"
fi

if [ -n "$CLANG_CXX" ]; then
  cat > "$PROBE_DIR/race.cc" <<'EOF'
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"
class Racy {
 public:
  int Read() const { return value_; }  // unlocked read: must not compile
 private:
  mutable svx::Mutex mu_;
  int value_ SVX_GUARDED_BY(mu_) = 0;
};
EOF
  if "$CLANG_CXX" -std=c++20 -I. -Wthread-safety -Werror=thread-safety \
       -fsyntax-only "$PROBE_DIR/race.cc" 2>/dev/null; then
    fail "an unlocked guarded read compiled — thread-safety gate is off"
  else
    pass "unlocked guarded read rejected"
  fi
fi

# ---- Summary ------------------------------------------------------------
note "summary"
if [ "$FAILURES" -eq 0 ]; then
  echo "all lint gates passed (skipped stages noted above)"
else
  echo "$FAILURES lint gate(s) failed"
fi
exit "$((FAILURES > 0))"
