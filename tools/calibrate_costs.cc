// Fits the CostModel's per-operator constants (src/viewstore/
// cost_constants.h) against measured executor times.
//
// The model's cost is linear in the constants: Estimate(plan, &units) fills
// a per-term work-unit vector with cost == constants · units exactly. So
// calibration is non-negative least squares over samples (units, measured
// ms): generate an XMark document, materialize the base-tag views, rewrite
// the 20-query workload, and time every produced plan plus a raw scan of
// every view extent. The fitted milliseconds-per-unit vector is normalized
// so scan = 1.0 (costs stay in "rows scanned" units), printed as a
// paste-ready CalibratedCostConstants() block, and optionally written as a
// store-loadable profile.
//
//   $ ./calibrate_costs [scale] [--reps N] [--write <store_dir>]
//
// --write saves <store_dir>/cost_profile.txt, which ViewCatalog loads at
// open, overriding the baked-in constants for every published snapshot.
#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/base_views.h"
#include "src/algebra/executor.h"
#include "src/algebra/plan.h"
#include "src/rewriting/rewriter.h"
#include "src/summary/summary_builder.h"
#include "src/util/strings.h"
#include "src/util/timer.h"
#include "src/viewstore/cost_constants.h"
#include "src/viewstore/cost_model.h"
#include "src/viewstore/view_catalog.h"
#include "src/workload/xmark.h"
#include "src/workload/xmark_queries.h"

namespace svx {
namespace {

constexpr size_t kTerms = CostConstants::kNumTerms;

struct Sample {
  std::string label;
  std::array<double, kTerms> units = {};
  double measured_ms = 0;
};

/// Minimum-of-`reps` execution time: the executor is deterministic, so the
/// minimum is the least-noise estimate of the actual work on a busy box.
double TimeExecute(const PlanNode& plan, const Catalog& catalog, int reps) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < reps; ++i) {
    Timer t;
    Result<Table> out = Execute(plan, catalog);
    double ms = t.ElapsedMillis();
    if (!out.ok()) return -1;
    best = std::min(best, ms);
  }
  return best;
}

/// Spearman rank correlation between per-sample model cost (constants ·
/// units) and measured time. Ties get their midrank.
double SpearmanCorr(const std::vector<Sample>& samples,
                    const CostConstants& c) {
  size_t n = samples.size();
  if (n < 3) return 0;
  auto ranks = [n](std::vector<double> v) {
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](size_t a, size_t b) { return v[a] < v[b]; });
    std::vector<double> r(n);
    size_t i = 0;
    while (i < n) {
      size_t j = i;
      while (j + 1 < n && v[idx[j + 1]] == v[idx[i]]) ++j;
      double mid = (static_cast<double>(i) + static_cast<double>(j)) / 2 + 1;
      for (size_t k = i; k <= j; ++k) r[idx[k]] = mid;
      i = j + 1;
    }
    return r;
  };
  std::vector<double> cost(n), time(n);
  std::array<double, kTerms> ca = c.ToArray();
  for (size_t i = 0; i < n; ++i) {
    double acc = 0;
    for (size_t t = 0; t < kTerms; ++t) acc += ca[t] * samples[i].units[t];
    cost[i] = acc;
    time[i] = samples[i].measured_ms;
  }
  std::vector<double> rc = ranks(cost);
  std::vector<double> rt = ranks(time);
  double mc = 0, mt = 0;
  for (size_t i = 0; i < n; ++i) {
    mc += rc[i];
    mt += rt[i];
  }
  mc /= static_cast<double>(n);
  mt /= static_cast<double>(n);
  double num = 0, dc = 0, dt = 0;
  for (size_t i = 0; i < n; ++i) {
    num += (rc[i] - mc) * (rt[i] - mt);
    dc += (rc[i] - mc) * (rc[i] - mc);
    dt += (rt[i] - mt) * (rt[i] - mt);
  }
  if (dc <= 0 || dt <= 0) return 0;
  return num / std::sqrt(dc * dt);
}

/// Least squares on the free (unclamped) terms via normal equations with
/// Gaussian elimination. Returns false on a singular system.
bool SolveFree(const std::vector<Sample>& samples,
               const std::array<bool, kTerms>& free_term,
               std::array<double, kTerms>* out) {
  std::vector<size_t> cols;
  for (size_t t = 0; t < kTerms; ++t) {
    if (free_term[t]) cols.push_back(t);
  }
  size_t m = cols.size();
  if (m == 0) return false;
  std::vector<std::vector<double>> a(m, std::vector<double>(m + 1, 0));
  for (const Sample& s : samples) {
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < m; ++j) {
        a[i][j] += s.units[cols[i]] * s.units[cols[j]];
      }
      a[i][m] += s.units[cols[i]] * s.measured_ms;
    }
  }
  // Tiny ridge term: terms that never vary independently in the sample set
  // (e.g. emit rows tracking join probes) otherwise make A'A singular.
  for (size_t i = 0; i < m; ++i) a[i][i] += 1e-9;
  for (size_t p = 0; p < m; ++p) {
    size_t best = p;
    for (size_t i = p + 1; i < m; ++i) {
      if (std::fabs(a[i][p]) > std::fabs(a[best][p])) best = i;
    }
    std::swap(a[p], a[best]);
    if (std::fabs(a[p][p]) < 1e-12) return false;
    for (size_t i = p + 1; i < m; ++i) {
      double f = a[i][p] / a[p][p];
      for (size_t j = p; j <= m; ++j) a[i][j] -= f * a[p][j];
    }
  }
  std::vector<double> x(m);
  for (size_t ip = m; ip-- > 0;) {
    double acc = a[ip][m];
    for (size_t j = ip + 1; j < m; ++j) acc -= a[ip][j] * x[j];
    x[ip] = acc / a[ip][ip];
  }
  out->fill(0);
  for (size_t i = 0; i < m; ++i) (*out)[cols[i]] = x[i];
  return true;
}

/// Non-negative least squares by active-set clamping: solve, clamp the most
/// negative coefficient to zero, repeat. Terms with no work units in any
/// sample stay at zero and are reported as uncalibrated.
bool FitNonNegative(const std::vector<Sample>& samples,
                    std::array<double, kTerms>* out) {
  std::array<bool, kTerms> free_term;
  for (size_t t = 0; t < kTerms; ++t) {
    double total = 0;
    for (const Sample& s : samples) total += s.units[t];
    free_term[t] = total > 0;
  }
  for (size_t iter = 0; iter < kTerms + 1; ++iter) {
    if (!SolveFree(samples, free_term, out)) return false;
    size_t worst = kTerms;
    double worst_v = -1e-12;
    for (size_t t = 0; t < kTerms; ++t) {
      if (free_term[t] && (*out)[t] < worst_v) {
        worst_v = (*out)[t];
        worst = t;
      }
    }
    if (worst == kTerms) return true;  // all non-negative
    free_term[worst] = false;
    (*out)[worst] = 0;
  }
  return true;
}

int Run(double scale, int reps, const std::string& write_dir) {
  XmarkOptions opts;
  opts.scale = scale;
  std::unique_ptr<Document> doc = GenerateXmark(opts);
  std::unique_ptr<Summary> summary = SummaryBuilder::Build(doc.get());
  std::vector<ViewDef> defs = BuildBaseTagViews(*summary);

  ViewCatalog catalog;
  for (const ViewDef& d : defs) {
    Status s = catalog.Materialize(d, *doc);
    if (!s.ok()) {
      std::fprintf(stderr, "materialize %s: %s\n", d.name.c_str(),
                   s.ToString().c_str());
      return 1;
    }
  }
  CostModel model = catalog.BuildCostModel();
  model.constants = DefaultCostConstants();  // units, not the current fit
  Catalog exec_catalog = catalog.ExecutorCatalog();
  std::printf("scale %.2f: %d nodes, %zu views, %d reps per plan\n", scale,
              doc->size(), defs.size(), reps);

  std::vector<Sample> samples;
  // Raw extent scans anchor the scan term (and the ms-per-row scale).
  for (const auto& v : catalog.views()) {
    PlanPtr scan = MakeViewScan(v->def.name, v->extent().schema());
    Sample s;
    s.label = "scan:" + v->def.name;
    CostEstimate est = model.Estimate(*scan, &s.units);
    (void)est;
    s.measured_ms = TimeExecute(*scan, exec_catalog, reps);
    if (s.measured_ms >= 0) samples.push_back(std::move(s));
  }
  // Every plan the rewriter produces for the 20-query workload: joins,
  // selections, projections, unions, navigations in realistic mixes.
  RewriterOptions ropts;
  ropts.max_results = 8;
  ropts.cost_model = &model;
  Rewriter rewriter(*summary, ropts);
  for (const auto& v : catalog.views()) rewriter.AddView(v->def);
  for (const XmarkQuery& q : XmarkQueryPatterns()) {
    Pattern qp = GetXmarkQueryPatternConjunctive(q.number);
    Result<std::vector<Rewriting>> rws = rewriter.Rewrite(qp);
    if (!rws.ok()) continue;
    for (size_t i = 0; i < rws->size(); ++i) {
      Sample s;
      s.label = StrFormat("q%d#%zu", q.number, i);
      CostEstimate est = model.Estimate(*(*rws)[i].plan, &s.units);
      (void)est;
      s.measured_ms = TimeExecute(*(*rws)[i].plan, exec_catalog, reps);
      if (s.measured_ms >= 0) samples.push_back(std::move(s));
    }
  }
  std::printf("%zu samples collected\n", samples.size());
  if (samples.size() < kTerms) {
    std::fprintf(stderr, "too few samples to fit %zu terms\n", kTerms);
    return 1;
  }

  std::array<double, kTerms> fit;
  if (!FitNonNegative(samples, &fit)) {
    std::fprintf(stderr, "singular system; cannot fit\n");
    return 1;
  }
  if (fit[0] <= 0) {
    std::fprintf(stderr,
                 "degenerate fit: scan term is %.3g ms/row; keeping "
                 "defaults\n",
                 fit[0]);
    return 1;
  }
  // Normalize to scan-cost units (scan pinned at 1.0 by convention).
  std::array<double, kTerms> rel = fit;
  for (size_t t = 0; t < kTerms; ++t) rel[t] = fit[t] / fit[0];
  CostConstants fitted = CostConstants::FromArray(rel);

  std::printf("\n%-14s %14s %14s\n", "term", "ms-per-unit", "scan-relative");
  for (size_t t = 0; t < kTerms; ++t) {
    std::printf("%-14s %14.6g %14.6g\n", CostConstants::TermName(t), fit[t],
                rel[t]);
  }
  double before = SpearmanCorr(samples, DefaultCostConstants());
  double after = SpearmanCorr(samples, fitted);
  std::printf("\nSpearman(cost, measured ms): default %.3f -> fitted %.3f\n",
              before, after);

  std::printf(
      "\npaste into CalibratedCostConstants() "
      "(src/viewstore/cost_constants.h):\n");
  for (size_t t = 0; t < kTerms; ++t) {
    std::printf("  c.%s = %.6g;\n", CostConstants::TermName(t), rel[t]);
  }

  if (!write_dir.empty()) {
    std::filesystem::create_directories(write_dir);
    std::string path =
        (std::filesystem::path(write_dir) / "cost_profile.txt").string();
    if (!SaveCostProfile(path, fitted)) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace svx

int main(int argc, char** argv) {
  double scale = 0.5;
  int reps = 3;
  std::string write_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--write") == 0 && i + 1 < argc) {
      write_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
      if (reps <= 0) {
        std::fprintf(stderr, "--reps needs a positive integer\n");
        return 2;
      }
    } else {
      std::optional<double> v = svx::ParseDouble(argv[i]);
      if (!v.has_value() || *v <= 0) {
        std::fprintf(stderr, "bad argument: %s\n", argv[i]);
        return 2;
      }
      scale = *v;
    }
  }
  return svx::Run(scale, reps, write_dir);
}
