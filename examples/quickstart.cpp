// Quickstart: parse a document, build its Dataguide, materialize a view,
// rewrite a query over it and execute the plan.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "src/algebra/executor.h"
#include "src/algebra/plan_printer.h"
#include "src/pattern/pattern_parser.h"
#include "src/rewriting/rewriter.h"
#include "src/rewriting/view.h"
#include "src/summary/summary_builder.h"
#include "src/summary/summary_io.h"
#include "src/xml/parser.h"

int main() {
  using namespace svx;

  // 1. An XML document (the paper's running-example flavor).
  const char* xml =
      "<site><regions><asia>"
      "<item id=\"0\"><name>Columbus pen</name>"
      "  <description><parlist><listitem><keyword>Columbus</keyword>"
      "  </listitem></parlist></description></item>"
      "<item id=\"1\"><name>Monteverdi pen</name>"
      "  <description><parlist><listitem>plain</listitem></parlist>"
      "  </description></item>"
      "</asia></regions></site>";
  Result<std::unique_ptr<Document>> doc = ParseXml(xml);
  if (!doc.ok()) {
    std::printf("parse error: %s\n", doc.status().ToString().c_str());
    return 1;
  }

  // 2. Its structural summary (strong Dataguide), built in linear time.
  std::unique_ptr<Summary> summary = SummaryBuilder::Build(doc->get());
  std::printf("summary (%d paths): %s\n\n", summary->size(),
              SummaryToString(*summary).c_str());

  // 3. A materialized view: every item's ID and its name's value.
  ViewDef v{"V", MustParsePattern("site(//item{id}(/name{v}))")};
  Table extent = MaterializeView(v.pattern, v.name, **doc);
  std::printf("view V = site(//item{id}(/name{v})), extent:\n%s\n",
              extent.ToString().c_str());

  // 4. A query asking for names of items — under the summary, the view
  //    answers it exactly.
  Pattern q = MustParsePattern("site(//regions(//item(/name{v})))");
  Rewriter rewriter(*summary);
  rewriter.AddView(v);
  Result<std::vector<Rewriting>> rewritings = rewriter.Rewrite(q);
  if (!rewritings.ok() || rewritings->empty()) {
    std::printf("no rewriting found\n");
    return 1;
  }
  std::printf("rewriting plan:\n%s\n",
              PlanToString(*(*rewritings)[0].plan).c_str());

  // 5. Execute the plan against the materialized extent.
  Catalog catalog;
  catalog.Register("V", &extent);
  Result<Table> result = Execute(*(*rewritings)[0].plan, catalog);
  if (!result.ok()) {
    std::printf("execution error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("query answer from the view:\n%s", result->ToString().c_str());
  return 0;
}
