// Incremental view maintenance walkthrough: materialize views into a
// catalog, update the document (subtree insert/delete with stable ORDPATH
// ids), and let ApplyUpdate patch the stored extents instead of
// rematerializing them.
//
//   $ ./build/incremental_maintenance
#include <cstdio>
#include <memory>

#include "src/pattern/pattern_parser.h"
#include "src/viewstore/view_catalog.h"
#include "src/xml/builder.h"
#include "src/xml/update.h"

using namespace svx;  // NOLINT — example brevity

namespace {

void PrintExtent(const ViewCatalog& catalog, const char* name) {
  const StoredView* v = catalog.Find(name);
  std::printf("%s (%lld rows):\n%s\n", name,
              static_cast<long long>(v->extent().NumRows()),
              v->extent().ToString().c_str());
}

}  // namespace

int main() {
  // An auction-site-in-miniature: two items, one with a keyword.
  auto doc = std::move(
      ParseTreeNotation(
          "site(items(item(name=pen keyword=blue) item(name=ink)))")
          .value());

  ViewCatalog catalog;
  ViewDef names{"names", MustParsePattern("site(//item{id}(/name{v}))")};
  ViewDef keywords{"keywords",
                   MustParsePattern("site(//item{id}(?/keyword{v}))")};
  for (const ViewDef& def : {names, keywords}) {
    Status s = catalog.Materialize(def, *doc);
    if (!s.ok()) {
      std::printf("materialize: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::printf("== initial extents ==\n");
  PrintExtent(catalog, "names");
  PrintExtent(catalog, "keywords");

  // Insert a new item under `items` (ORDPATH 1.1): appended as the last
  // child, every existing node keeps its id.
  auto subtree =
      std::move(ParseTreeNotation("item(name=brush keyword=fine)").value());
  Result<UpdateResult> ins =
      InsertSubtree(*doc, OrdPath::FromString("1.1"), *subtree);
  if (!ins.ok()) {
    std::printf("insert: %s\n", ins.status().ToString().c_str());
    return 1;
  }
  MaintenanceStats ms;
  Status s = catalog.ApplyUpdate(ins->delta, &ms);
  if (!s.ok()) {
    std::printf("apply: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("== after inserting item at %s (+%d nodes): %lld tuples in, "
              "%lld out ==\n",
              ins->delta.region.ToString().c_str(), ins->delta.region_size,
              static_cast<long long>(ms.tuples_inserted),
              static_cast<long long>(ms.tuples_deleted));
  PrintExtent(catalog, "names");
  PrintExtent(catalog, "keywords");
  doc = std::move(ins->doc);

  // Delete the first item's keyword: the optional column flips back to ⊥.
  Result<UpdateResult> del =
      DeleteSubtree(*doc, OrdPath::FromString("1.1.1.2"));
  if (!del.ok()) {
    std::printf("delete: %s\n", del.status().ToString().c_str());
    return 1;
  }
  s = catalog.ApplyUpdate(del->delta, &ms);
  if (!s.ok()) {
    std::printf("apply: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("== after deleting %s: %lld tuples in, %lld out ==\n",
              del->delta.region.ToString().c_str(),
              static_cast<long long>(ms.tuples_inserted),
              static_cast<long long>(ms.tuples_deleted));
  PrintExtent(catalog, "keywords");
  return 0;
}
