// Nested XQuery -> tree pattern -> view-based rewriting -> execution: the
// full pipeline of the paper on its §1 example query.
//
//   $ ./build/examples/xquery_rewriting
#include <cstdio>

#include "src/algebra/executor.h"
#include "src/algebra/plan_printer.h"
#include "src/pattern/pattern_parser.h"
#include "src/pattern/pattern_printer.h"
#include "src/rewriting/rewriter.h"
#include "src/rewriting/view.h"
#include "src/summary/summary_builder.h"
#include "src/workload/xmark.h"
#include "src/xquery/xquery_translator.h"

int main() {
  using namespace svx;

  // The §1 example query: items having mail, their names, and per item the
  // keywords of its listitems, grouped (nested FLWR).
  const char* query =
      "for $x in doc(\"XMark.xml\")//item[.//mail] return "
      "<res>{ $x/name/text(), "
      "for $y in $x//listitem return <key>{ $y//keyword }</key> }</res>";
  std::printf("XQuery:\n  %s\n\n", query);

  Result<Pattern> q = XQueryToPattern(query, "site");
  if (!q.ok()) {
    std::printf("translation error: %s\n", q.status().ToString().c_str());
    return 1;
  }
  std::printf("tree pattern: %s\n\n", PatternToString(*q).c_str());

  XmarkOptions opts;
  opts.scale = 1.0;
  std::unique_ptr<Document> doc = GenerateXmark(opts);
  std::unique_ptr<Summary> summary = SummaryBuilder::Build(doc.get());

  // A view storing exactly the query's needs (the intro's V1 shape): item
  // ids, names, and the optional listitem/keyword data.
  std::vector<ViewDef> defs = {
      {"V1",
       MustParsePattern("site(//item{id}(//mail ?/name{v} "
                        "?//listitem{id}(?//keyword{c})))")},
  };
  std::vector<MaterializedView> views = MaterializeAll(defs, *doc);
  Catalog catalog;
  for (const MaterializedView& v : views) {
    catalog.Register(v.def.name, &v.extent);
    std::printf("%s extent: %lld rows\n", v.def.name.c_str(),
                static_cast<long long>(v.extent.NumRows()));
  }

  Rewriter rewriter(*summary);
  for (const ViewDef& d : defs) rewriter.AddView(d);
  Result<std::vector<Rewriting>> rws = rewriter.Rewrite(*q);
  if (!rws.ok() || rws->empty()) {
    std::printf("no rewriting found\n");
    return 1;
  }
  std::printf("\nplan:\n%s\n", PlanToString(*(*rws)[0].plan).c_str());

  Result<Table> result = Execute(*(*rws)[0].plan, catalog);
  if (!result.ok()) {
    std::printf("execution error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // Compare against direct evaluation of the pattern on the document.
  Table reference = MaterializeView(*q, "Q", *doc);
  std::printf("plan rows: %lld; direct evaluation rows: %lld; equal: %s\n",
              static_cast<long long>(result->NumRows()),
              static_cast<long long>(reference.NumRows()),
              result->EqualsIgnoringOrder(reference) ? "yes" : "NO");
  for (int64_t i = 0; i < result->NumRows() && i < 3; ++i) {
    const Tuple& row = result->row(i);
    std::printf("  item %s name=%s groups=%s\n", row[0].ToString().c_str(),
                row[1].ToString().c_str(), row[2].ToString(false).c_str());
  }
  return 0;
}
