// Nested XQuery -> tree pattern -> view-based rewriting -> execution: the
// full pipeline of the paper on its §1 example query, with the view extent
// served from a persistent ViewCatalog (materialize -> save -> reload) and
// the plan picked by the statistics-driven cost model.
//
//   $ ./build/examples/xquery_rewriting
#include <cstdio>
#include <filesystem>

#include "src/algebra/executor.h"
#include "src/algebra/plan_printer.h"
#include "src/pattern/pattern_parser.h"
#include "src/pattern/pattern_printer.h"
#include "src/rewriting/rewriter.h"
#include "src/rewriting/view.h"
#include "src/summary/summary_builder.h"
#include "src/viewstore/view_catalog.h"
#include "src/workload/xmark.h"
#include "src/xquery/xquery_translator.h"

int main() {
  using namespace svx;

  // The §1 example query: items having mail, their names, and per item the
  // keywords of its listitems, grouped (nested FLWR).
  const char* query =
      "for $x in doc(\"XMark.xml\")//item[.//mail] return "
      "<res>{ $x/name/text(), "
      "for $y in $x//listitem return <key>{ $y//keyword }</key> }</res>";
  std::printf("XQuery:\n  %s\n\n", query);

  Result<Pattern> q = XQueryToPattern(query, "site");
  if (!q.ok()) {
    std::printf("translation error: %s\n", q.status().ToString().c_str());
    return 1;
  }
  std::printf("tree pattern: %s\n\n", PatternToString(*q).c_str());

  XmarkOptions opts;
  opts.scale = 1.0;
  std::unique_ptr<Document> doc = GenerateXmark(opts);
  std::unique_ptr<Summary> summary = SummaryBuilder::Build(doc.get());

  // Two views that can both answer the query: V1 stores exactly the query's
  // needs (the intro's V1 shape); VWide additionally stores every item
  // subtree element, making it a strictly costlier cover.
  std::vector<ViewDef> defs = {
      {"V1",
       MustParsePattern("site(//item{id}(//mail ?/name{v} "
                        "?//listitem{id}(?//keyword{c})))")},
      {"VWide",
       MustParsePattern("site(//item{id}(//mail ?/name{v} "
                        "?//listitem{id}(?//keyword{c}) ?//*{id,l}))")},
  };

  // Materialize into a store directory, then reload — the extents below are
  // served from disk, not from the materialization pass.
  const std::string store_dir =
      (std::filesystem::temp_directory_path() / "svx_example_store").string();
  {
    ViewCatalog catalog(store_dir);
    for (const ViewDef& d : defs) {
      Status s = catalog.Materialize(d, *doc);
      if (!s.ok()) {
        std::printf("materialize error: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    Status s = catalog.Save();
    if (!s.ok()) {
      std::printf("save error: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  ViewCatalog store(store_dir);
  Status loaded = store.Load(doc.get());
  if (!loaded.ok()) {
    std::printf("load error: %s\n", loaded.ToString().c_str());
    return 1;
  }
  std::printf("view store %s: %lld bytes\n", store_dir.c_str(),
              static_cast<long long>(store.TotalBytes()));
  for (const auto& v : store.views()) {
    std::printf("  %s extent: %lld rows (%lld bytes)\n", v->def.name.c_str(),
                static_cast<long long>(v->stats.num_rows),
                static_cast<long long>(v->extent_bytes));
  }

  CostModel model = store.BuildCostModel();
  RewriterOptions ropts;
  ropts.cost_model = &model;
  ropts.max_results = 4;
  Rewriter rewriter(*summary, ropts);
  for (const auto& v : store.views()) rewriter.AddView(v->def);
  Result<std::vector<Rewriting>> rws = rewriter.Rewrite(*q);
  if (!rws.ok() || rws->empty()) {
    std::printf("no rewriting found\n");
    return 1;
  }
  std::printf("\n%zu rewritings, cost-ranked:\n", rws->size());
  for (const Rewriting& r : *rws) {
    std::printf("  cost %8.0f  %s\n", r.est_cost, r.compact.c_str());
  }
  std::printf("\ncheapest plan:\n%s\n",
              PlanToString(*(*rws)[0].plan).c_str());

  Catalog catalog = store.ExecutorCatalog();
  Result<Table> result = Execute(*(*rws)[0].plan, catalog);
  if (!result.ok()) {
    std::printf("execution error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // Compare against direct evaluation of the pattern on the document.
  Table reference = MaterializeView(*q, "Q", *doc);
  std::printf("plan rows: %lld; direct evaluation rows: %lld; equal: %s\n",
              static_cast<long long>(result->NumRows()),
              static_cast<long long>(reference.NumRows()),
              result->EqualsIgnoringOrder(reference) ? "yes" : "NO");
  for (int64_t i = 0; i < result->NumRows() && i < 3; ++i) {
    const Tuple& row = result->row(i);
    std::printf("  item %s name=%s groups=%s\n", row[0].ToString().c_str(),
                row[1].ToString().c_str(), row[2].ToString(false).c_str());
  }
  return 0;
}
