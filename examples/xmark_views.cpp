// The paper's §1 scenario end-to-end on a generated XMark document: two
// materialized views that share no stored node are combined by an ID
// equality join on their structural identifiers; content navigation digs
// keyword data out of a stored C attribute.
//
//   $ ./build/examples/xmark_views
#include <cstdio>

#include "src/algebra/executor.h"
#include "src/algebra/plan_printer.h"
#include "src/pattern/pattern_parser.h"
#include "src/rewriting/rewriter.h"
#include "src/rewriting/view.h"
#include "src/summary/summary_builder.h"
#include "src/workload/xmark.h"

int main() {
  using namespace svx;

  XmarkOptions opts;
  opts.scale = 1.0;
  std::unique_ptr<Document> doc = GenerateXmark(opts);
  std::unique_ptr<Summary> summary = SummaryBuilder::Build(doc.get());
  std::printf("XMark-like document: %d nodes, summary: %d paths\n\n",
              doc->size(), summary->size());

  // V1: items with the content of their descriptions (the intro's V1 keeps
  // listitem content; description content subsumes it here).
  // V2: items with their names — V1 and V2 share no stored node, but the
  // stored IDs are structural, so they can be combined (§1 "Exploiting ID
  // properties").
  std::vector<ViewDef> defs = {
      {"V1", MustParsePattern("site(//item{id}(/description{c}))")},
      {"V2", MustParsePattern("site(//item{id}(/name{v}))")},
  };
  std::vector<MaterializedView> views = MaterializeAll(defs, *doc);
  Catalog catalog;
  for (const MaterializedView& v : views) {
    std::printf("%s: %lld rows\n", v.def.name.c_str(),
                static_cast<long long>(v.extent.NumRows()));
    catalog.Register(v.def.name, &v.extent);
  }

  Rewriter rewriter(*summary);
  for (const ViewDef& d : defs) rewriter.AddView(d);

  // Query 1: name + description of every item — needs the ID join.
  {
    Pattern q =
        MustParsePattern("site(//item(/name{v} /description{c}))");
    Result<std::vector<Rewriting>> rws = rewriter.Rewrite(q);
    if (rws.ok() && !rws->empty()) {
      std::printf("\nquery 1 plan: %s\n", (*rws)[0].compact.c_str());
      Result<Table> t = Execute(*(*rws)[0].plan, catalog);
      if (t.ok()) {
        std::printf("rows: %lld (sample below)\n",
                    static_cast<long long>(t->NumRows()));
        for (int64_t i = 0; i < t->NumRows() && i < 3; ++i) {
          std::printf("  %s | %s\n", t->row(i)[0].ToString().c_str(),
                      t->row(i)[1].ToString(false).c_str());
        }
      }
    } else {
      std::printf("\nquery 1: no rewriting found\n");
    }
  }

  // Query 2: description keywords of items — no view stores keyword nodes,
  // but V1's content attribute can be navigated (§1: "we can extract the
  // keyword elements by navigating inside the content").
  {
    Pattern q =
        MustParsePattern("site(//item{id}(/description(//keyword{v})))");
    Result<std::vector<Rewriting>> rws = rewriter.Rewrite(q);
    if (rws.ok() && !rws->empty()) {
      std::printf("\nquery 2 plan: %s\n", (*rws)[0].compact.c_str());
      Result<Table> t = Execute(*(*rws)[0].plan, catalog);
      if (t.ok()) {
        std::printf("rows: %lld (sample below)\n",
                    static_cast<long long>(t->NumRows()));
        for (int64_t i = 0; i < t->NumRows() && i < 3; ++i) {
          std::printf("  %s | %s\n", t->row(i)[0].ToString().c_str(),
                      t->row(i)[1].ToString().c_str());
        }
      }
    } else {
      std::printf("\nquery 2: no rewriting found\n");
    }
  }
  return 0;
}
