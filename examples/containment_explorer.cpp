// Interactive-style demonstration of summary-constrained containment: the
// §3.2 and §4 phenomena on small summaries, printed with explanations.
//
//   $ ./build/examples/containment_explorer
#include <cstdio>

#include "src/containment/containment.h"
#include "src/pattern/pattern_parser.h"
#include "src/summary/summary_io.h"

namespace {

void Check(const svx::Summary& s, const char* p, const char* q,
           const char* comment) {
  using namespace svx;
  Result<bool> pq = IsContained(MustParsePattern(p), MustParsePattern(q), s);
  Result<bool> qp = IsContained(MustParsePattern(q), MustParsePattern(p), s);
  const char* rel = "incomparable";
  if (pq.ok() && qp.ok()) {
    if (*pq && *qp) {
      rel = "equivalent";
    } else if (*pq) {
      rel = "p ⊆S q";
    } else if (*qp) {
      rel = "q ⊆S p";
    }
  }
  std::printf("  p = %-38s q = %-38s -> %s\n     (%s)\n", p, q, rel, comment);
}

}  // namespace

int main() {
  using namespace svx;

  {
    std::printf("summary r(a(b)) — every b sits under an a:\n");
    auto s = ParseSummary("r(a(b))");
    Check(**s, "r(//b{id})", "r(//a(//b{id}))",
          "the a node is implicit under the summary (§3.2)");
  }
  {
    std::printf("\nenhanced summary a(b(c! e) f!) — strong edges:\n");
    auto s = ParseSummary("a(b(c! e) f!)");
    Check(**s, "a(/b{id})", "a(/b{id}(/c) /f)",
          "every b has a c child and every a an f child (§4.1)");
  }
  {
    std::printf("\nvalue predicates (§4.2):\n");
    auto s = ParseSummary("r(c(b))");
    Check(**s, "r(/c{id}[v=3])", "r(/c{id}[v>1])",
          "v=3 implies v>1 on the same node");
  }
  {
    std::printf("\noptional edges (§4.3):\n");
    auto s = ParseSummary("a(c(b))");
    Check(**s, "a(/c{id}(/b{id}))", "a(/c{id}(?/b{id}))",
          "required tuples are a subset of the optional ones");
    auto strong = ParseSummary("a(c(b!))");
    Check(**strong, "a(/c{id}(/b{id}))", "a(/c{id}(?/b{id}))",
          "with a strong edge the ⊥ variant is impossible: equivalent");
  }
  {
    std::printf("\nnested edges (§4.5):\n");
    auto s = ParseSummary("a(b!!(c))");
    Check(**s, "a(/b(n/c{id}))", "a(n/b(/c{id}))",
          "one-to-one edge a->b: nesting under a equals nesting under b");
    auto plain = ParseSummary("a(b(c))");
    Check(**plain, "a(/b(n/c{id}))", "a(n/b(/c{id}))",
          "without the constraint the anchors differ: incomparable");
  }
  {
    std::printf("\nunions (Prop 3.2):\n");
    auto s = ParseSummary("a(b d(b))");
    Pattern p = MustParsePattern("a(//b{id})");
    Pattern q1 = MustParsePattern("a(/b{id})");
    Pattern q2 = MustParsePattern("a(/d(/b{id}))");
    Result<bool> in_union = IsContainedInUnion(p, {&q1, &q2}, **s);
    std::printf(
        "  a(//b) ⊆S a(/b) ∪ a(/d/b): %s — neither member suffices alone\n",
        in_union.ok() && *in_union ? "yes" : "no");
  }
  return 0;
}
